"""Unit tests for LSA and LSA_CS (Algorithm 2)."""

import pytest

from repro.core.lsa import lsa, lsa_cs
from repro.instances.random_jobs import random_lax_jobs
from repro.scheduling.edf import edf_feasible, edf_schedule
from repro.scheduling.job import make_jobs
from repro.scheduling.segment import Segment
from repro.scheduling.timeline import Timeline
from repro.scheduling.verify import verify_schedule
from repro.utils.numeric import log_base


def lax_jobs(*triples, k=1):
    """Build jobs and assert they really are lax for the given k."""
    jobs = make_jobs(list(triples))
    assert all(j.laxity >= k + 1 for j in jobs)
    return jobs


class TestLsaBasics:
    def test_single_job_leftmost(self):
        jobs = lax_jobs((0, 10, 4))
        s = lsa(jobs, k=1)
        assert s[0] == (Segment(0, 4),)

    def test_feasible_output(self):
        jobs = random_lax_jobs(30, 2, seed=0)
        s = lsa(jobs, k=2)
        verify_schedule(s, k=2).assert_ok()

    def test_preemption_budget_respected(self):
        jobs = random_lax_jobs(50, 1, seed=1)
        s = lsa(jobs, k=1)
        assert s.max_preemptions <= 1

    def test_density_order_wins_conflicts(self):
        # Two jobs fighting for [0, 8]: the denser one is placed first.
        jobs = make_jobs([(0, 8, 4, 2.0), (0, 8, 4, 7.0)])
        s = lsa(jobs, k=1, enforce_laxity=False)
        assert 1 in s

    def test_enforce_laxity(self):
        strict = make_jobs([(0, 5, 4)])  # λ = 1.25 < 2
        with pytest.raises(ValueError, match="lax"):
            lsa(strict, k=1)
        s = lsa(strict, k=1, enforce_laxity=False)
        verify_schedule(s, k=1).assert_ok()

    def test_value_order_variant(self):
        jobs = random_lax_jobs(20, 1, seed=2)
        s = lsa(jobs, k=1, order="value")
        verify_schedule(s, k=1).assert_ok()

    def test_unknown_order(self):
        with pytest.raises(ValueError):
            lsa(lax_jobs((0, 10, 4)), k=1, order="bogus")

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            lsa(lax_jobs((0, 10, 4)), k=-1)


class TestLsaPlacement:
    def test_splits_across_idle_segments(self):
        # Pre-book the middle so the window's idle space is split.
        tl = Timeline([Segment(3, 5)])
        jobs = lax_jobs((0, 12, 5))
        s = lsa(jobs, k=1, timeline=tl)
        assert s[0] == (Segment(0, 3), Segment(5, 7))

    def test_swap_shortest_for_next(self):
        # k=0 (one piece): the leftmost idle [0,1] is too short; the swap
        # loop must advance to [2,7].
        tl = Timeline([Segment(1, 2)])
        jobs = make_jobs([(0, 12, 4)])
        s = lsa(jobs, k=0, enforce_laxity=False, timeline=tl)
        assert s[0] == (Segment(2, 6),)

    def test_rejects_when_window_full(self):
        tl = Timeline([Segment(0, 12)])
        jobs = lax_jobs((0, 12, 5))
        s = lsa(jobs, k=1, timeline=tl)
        assert len(s) == 0

    def test_rejects_when_fragmented_beyond_budget(self):
        # Window has 3 idle slots of length 2 but k+1 = 2 pieces max and
        # p = 5 > 4: unschedulable at k=1.
        tl = Timeline([Segment(2, 4), Segment(6, 8), Segment(10, 12)])
        jobs = make_jobs([(0, 14, 5)])
        s = lsa(jobs, k=1, enforce_laxity=False, timeline=tl)
        assert len(s) == 0

    def test_k2_fits_fragmented(self):
        tl = Timeline([Segment(2, 4), Segment(6, 8), Segment(10, 12)])
        jobs = make_jobs([(0, 14, 5)])
        s = lsa(jobs, k=2, enforce_laxity=False, timeline=tl)
        verify_schedule(s, k=2).assert_ok()
        assert len(s[0]) <= 3

    def test_sequential_jobs_tile(self):
        jobs = lax_jobs((0, 10, 2), (0, 10, 2), (0, 10, 2))
        s = lsa(jobs, k=1)
        verify_schedule(s, k=1).assert_ok()
        assert len(s) == 3
        assert s.busy_segments() == [Segment(0, 6)]


class TestLsaCs:
    def test_feasible_and_bounded(self):
        jobs = random_lax_jobs(40, 2, length_ratio=30.0, seed=3)
        s = lsa_cs(jobs, k=2)
        verify_schedule(s, k=2).assert_ok()

    def test_lemma_4_10_guarantee(self):
        # When the whole set is feasible, OPT_inf = total value and the
        # 6 log_{k+1} P bound must hold against it.
        for seed in range(4):
            jobs = random_lax_jobs(25, 2, length_ratio=20.0, horizon=500.0, seed=seed)
            s = lsa_cs(jobs, k=2)
            if edf_feasible(jobs):
                opt = jobs.total_value
            else:
                opt = edf_schedule(jobs, stop_on_miss=False).schedule.value
            bound = 6 * max(1.0, log_base(jobs.length_ratio, 3))
            assert s.value >= opt / bound - 1e-9

    def test_single_class_degenerates_to_lsa(self):
        jobs = lax_jobs((0, 10, 2), (1, 12, 3))
        cs = lsa_cs(jobs, k=1)
        plain = lsa(jobs, k=1)
        assert cs.value == plain.value

    def test_returns_best_class(self):
        # Class 0: many small jobs (total value 4); class 2: one big job
        # (value 1).  Best class must be the small one.
        jobs = make_jobs(
            [(0, 30, 1, 1.0), (0, 30, 1, 1.0), (0, 30, 1, 1.0), (0, 30, 1, 1.0),
             (0, 60, 9, 1.0)]
        )
        s, per_class = lsa_cs(jobs, k=2, return_all_classes=True)
        assert len(per_class) == 2
        assert s.value == 4.0

    def test_classes_use_separate_timelines(self):
        # Jobs of different classes may overlap in time in their own class
        # schedules; the returned winner is internally consistent.
        jobs = make_jobs([(0, 8, 2, 1.0), (0, 40, 10, 9.0)])
        s = lsa_cs(jobs, k=1)
        verify_schedule(s, k=1).assert_ok()
        assert s.value == 9.0

    def test_k0_rejected(self):
        with pytest.raises(ValueError, match="k >= 1"):
            lsa_cs(make_jobs([(0, 10, 4)]), k=0)

    def test_empty_jobset(self):
        s = lsa_cs(make_jobs([]), k=1)
        assert len(s) == 0

    def test_value_order_ablation(self):
        jobs = random_lax_jobs(30, 1, seed=4)
        s = lsa_cs(jobs, k=1, order="value")
        verify_schedule(s, k=1).assert_ok()
