"""Tests for the Lawler-style exact preemptive DP.

The headline property: on every instance the DP's value equals the
branch-and-bound optimum, and the demand-bound criterion agrees with EDF.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.scheduling.edf import edf_feasible
from repro.scheduling.exact import opt_infty_value
from repro.scheduling.job import Job, JobSet, make_jobs
from repro.scheduling.lawler_dp import (
    demand_bound_feasible,
    lawler_optimal_schedule,
    lawler_optimal_value,
)
from repro.scheduling.verify import verify_schedule


class TestDemandBound:
    def test_feasible_set(self, simple_jobs):
        assert demand_bound_feasible(simple_jobs)

    def test_overloaded_window(self):
        jobs = make_jobs([(0, 4, 3), (0, 4, 3)])
        assert not demand_bound_feasible(jobs)

    def test_nested_tight(self):
        jobs = make_jobs([(0, 4, 3), (1, 3, 1)])
        assert demand_bound_feasible(jobs)

    def test_nested_overfull(self):
        jobs = make_jobs([(0, 4, 3), (1, 3, 2)])
        assert not demand_bound_feasible(jobs)


class TestValueExactness:
    def test_all_feasible_takes_everything(self, simple_jobs):
        assert lawler_optimal_value(simple_jobs) == pytest.approx(
            simple_jobs.total_value
        )

    def test_matches_bnb_on_overload(self, overloaded_jobs):
        assert lawler_optimal_value(overloaded_jobs) == pytest.approx(
            opt_infty_value(overloaded_jobs)
        )

    @pytest.mark.parametrize("spec", [
        [(0, 6, 3, 2.0), (1, 4, 2, 3.0), (3, 8, 3, 1.0)],
        [(0, 4, 2, 1.0), (0, 8, 4, 2.0), (4, 10, 3, 3.0), (1, 5, 2, 2.5)],
        [(0, 5, 5, 4.0), (1, 3, 2, 3.0), (2, 9, 3, 2.0), (6, 11, 4, 5.0)],
    ])
    def test_matches_bnb(self, spec):
        jobs = make_jobs(spec)
        assert lawler_optimal_value(jobs) == pytest.approx(opt_infty_value(jobs))

    def test_empty(self):
        assert lawler_optimal_value(make_jobs([])) == 0

    def test_front_guard(self):
        jobs = make_jobs([(0, 100 + i, 1, 1.0 + i * 0.01) for i in range(12)])
        with pytest.raises(RuntimeError, match="front"):
            lawler_optimal_value(jobs, max_states=2)


class TestScheduleMaterialisation:
    def test_schedule_matches_value(self, overloaded_jobs):
        s = lawler_optimal_schedule(overloaded_jobs)
        verify_schedule(s).assert_ok()
        assert s.value == pytest.approx(lawler_optimal_value(overloaded_jobs))

    def test_preemptive_schedule_produced(self):
        jobs = make_jobs([(0, 4, 3, 1.0), (1, 3, 1, 1.0)])
        s = lawler_optimal_schedule(jobs)
        verify_schedule(s).assert_ok()
        assert s.value == pytest.approx(2.0)
        assert s.max_preemptions >= 1

    def test_empty(self):
        assert len(lawler_optimal_schedule(make_jobs([]))) == 0


@st.composite
def integral_jobsets(draw, max_jobs: int = 7):
    n = draw(st.integers(min_value=1, max_value=max_jobs))
    jobs = []
    for i in range(n):
        r = draw(st.integers(min_value=0, max_value=16))
        p = draw(st.integers(min_value=1, max_value=6))
        slack = draw(st.integers(min_value=0, max_value=10))
        w = draw(st.integers(min_value=1, max_value=9))
        jobs.append(Job(i, r, r + p + slack, p, w))
    return JobSet(jobs)


@given(integral_jobsets())
def test_demand_bound_agrees_with_edf(jobs):
    assert demand_bound_feasible(jobs) == edf_feasible(jobs)


@given(integral_jobsets())
def test_dp_matches_branch_and_bound(jobs):
    assert lawler_optimal_value(jobs) == pytest.approx(opt_infty_value(jobs))


@given(integral_jobsets())
def test_dp_schedule_feasible_and_optimal(jobs):
    s = lawler_optimal_schedule(jobs)
    verify_schedule(s).assert_ok()
    assert s.value == pytest.approx(opt_infty_value(jobs))
