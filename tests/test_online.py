"""Tests for the online baselines (§1.4 context)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.scheduling.edf import edf_feasible
from repro.scheduling.exact import opt_infty_value
from repro.scheduling.job import Job, JobSet, make_jobs
from repro.scheduling.online import (
    empirical_competitive_ratio,
    online_edf_admission,
    online_value_abort,
)
from repro.scheduling.verify import verify_schedule


class TestAdmissionPolicy:
    def test_feasible_set_fully_accepted(self, simple_jobs):
        s = online_edf_admission(simple_jobs)
        verify_schedule(s).assert_ok()
        assert s.value == pytest.approx(simple_jobs.total_value)

    def test_rejects_infeasible_arrivals(self, overloaded_jobs):
        s = online_edf_admission(overloaded_jobs)
        verify_schedule(s).assert_ok()
        # Arrival order = id order: job 0 admitted, job 1 rejected, job 2
        # admitted (fits after 0).
        assert s.scheduled_ids == [0, 2]

    def test_no_admitted_job_ever_missed(self):
        # Admission control means completions == admissions.
        jobs = make_jobs([(0, 6, 3, 1.0), (1, 5, 2, 1.0), (2, 9, 3, 1.0), (2, 7, 2, 1.0)])
        s = online_edf_admission(jobs)
        verify_schedule(s).assert_ok()

    def test_myopia_vs_offline(self):
        # A cheap early job blocks a valuable later one: online admission
        # commits, offline OPT would skip it.
        jobs = make_jobs([(0, 4, 4, 1.0), (1, 5, 4, 100.0)])
        s = online_edf_admission(jobs)
        assert s.scheduled_ids == [0]
        assert opt_infty_value(jobs) == pytest.approx(100.0)

    def test_empty(self):
        assert online_edf_admission(make_jobs([])).value == 0


class TestAbortPolicy:
    def test_feasible_set_untouched(self, simple_jobs):
        s = online_value_abort(simple_jobs)
        assert s.value == pytest.approx(simple_jobs.total_value)

    def test_aborts_low_value_for_high(self):
        # Unlike admission, the abort policy recovers the valuable job.
        jobs = make_jobs([(0, 4, 4, 1.0), (1, 5, 4, 100.0)])
        s = online_value_abort(jobs)
        verify_schedule(s).assert_ok()
        assert 1 in s
        assert s.value == pytest.approx(100.0)

    def test_burned_time_is_lost(self):
        # The aborted job's slice leaves a hole no one else uses online.
        jobs = make_jobs([(0, 4, 4, 1.0), (1, 5, 4, 100.0), (0, 9, 4, 2.0)])
        s = online_value_abort(jobs)
        verify_schedule(s).assert_ok()

    def test_empty(self):
        assert online_value_abort(make_jobs([])).value == 0


class TestCompetitiveRatio:
    def test_ratio_one_on_feasible(self, simple_jobs):
        r = empirical_competitive_ratio(
            simple_jobs, online_edf_admission, simple_jobs.total_value
        )
        assert r == pytest.approx(1.0)

    def test_ratio_inf_on_zero_value(self):
        jobs = make_jobs([(0, 4, 4, 1.0)])

        def nothing(js):
            from repro.scheduling.schedule import Schedule

            return Schedule(js, {})

        assert empirical_competitive_ratio(jobs, nothing, 1.0) == float("inf")


@st.composite
def jobsets(draw):
    n = draw(st.integers(min_value=1, max_value=8))
    jobs = []
    for i in range(n):
        r = draw(st.integers(min_value=0, max_value=20))
        p = draw(st.integers(min_value=1, max_value=6))
        slack = draw(st.integers(min_value=0, max_value=10))
        v = draw(st.integers(min_value=1, max_value=20))
        jobs.append(Job(i, r, r + p + slack, p, v))
    return JobSet(jobs)


@given(jobsets())
def test_admission_output_always_feasible(jobs):
    s = online_edf_admission(jobs)
    verify_schedule(s).assert_ok()


@given(jobsets())
def test_abort_output_always_feasible(jobs):
    s = online_value_abort(jobs)
    verify_schedule(s).assert_ok()


@given(jobsets())
def test_online_never_beats_offline_opt(jobs):
    opt = opt_infty_value(jobs)
    for policy in (online_edf_admission, online_value_abort):
        assert policy(jobs).value <= opt + 1e-9


@given(jobsets())
def test_policies_take_everything_when_feasible(jobs):
    if edf_feasible(jobs):
        assert online_edf_admission(jobs).value == pytest.approx(jobs.total_value)
        assert online_value_abort(jobs).value == pytest.approx(jobs.total_value)
