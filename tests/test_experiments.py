"""Smoke + shape tests for the experiment entry points (small parameters).

Each experiment asserts its own paper bounds internally while running;
these tests additionally check the *shape* of the returned series — who
wins, what grows, what stays flat — which is the reproduction's contract.
"""

import pytest

from repro.analysis.experiments import (
    EXPERIMENTS,
    e1_bas_lower_bound,
    e2_bas_upper_bound,
    e3_reduction_roundtrip,
    e4_price_vs_n,
    e5_price_vs_P,
    e6_price_lower_bound,
    e7_k0_geometric_chain,
    e7_k0_upper_bound,
    e8_multimachine,
    e9_runtime_scaling,
    e10_ablations,
    run_experiment,
)


class TestE1:
    def test_loss_monotone_in_L(self):
        t = e1_bas_lower_bound(k_values=(2,), L_values=(1, 2, 3, 4))
        losses = t.column("loss")
        assert losses == sorted(losses)

    def test_alg_value_below_cap(self):
        t = e1_bas_lower_bound(k_values=(1, 2), L_values=(2, 3))
        for alg, cap in zip(t.column("TM value"), t.column("cap K/(K-k)")):
            assert alg < cap

    def test_loss_below_upper_bound(self):
        t = e1_bas_lower_bound(k_values=(1,), L_values=(2, 4))
        for loss, bound in zip(t.column("loss"), t.column("bound log_{k+1} n")):
            assert loss <= bound + 1e-9


class TestE2:
    def test_runs_and_bounds_hold(self):
        t = e2_bas_upper_bound(n_values=(60, 240), k_values=(1, 2), repeats=2)
        for tm, lc, bound in zip(
            t.column("TM loss"), t.column("LC loss"), t.column("bound log_{k+1} n")
        ):
            assert tm <= lc + 1e-9 <= bound + 1.0

    def test_higher_k_less_loss(self):
        t = e2_bas_upper_bound(
            n_values=(240,), k_values=(1, 4), shapes=("attachment",), repeats=2
        )
        losses = t.column("TM loss")
        assert losses[1] <= losses[0] + 1e-9


class TestE3:
    def test_ratios_above_bound(self):
        t = e3_reduction_roundtrip(depths=(1, 2), branchings=(2,), k_values=(1,))
        for ratio, bound in zip(
            t.column("kept value ratio"), t.column("bound 1/log_{k+1} n")
        ):
            assert ratio >= bound - 1e-9

    def test_budget_column(self):
        t = e3_reduction_roundtrip(depths=(2,), branchings=(3,), k_values=(1, 2))
        for segs, budget in zip(t.column("max segs"), t.column("budget k+1")):
            assert segs <= budget


class TestE4:
    def test_all_within_bound(self):
        t = e4_price_vs_n(n_values=(6, 9), k_values=(1,), repeats=2)
        assert all(t.column("within"))

    def test_higher_k_cheaper(self):
        t = e4_price_vs_n(n_values=(9,), k_values=(1, 2), repeats=2)
        prices = t.column("price")
        # Not guaranteed per-instance, but holds on averages here.
        assert prices[1] <= prices[0] + 0.5


class TestE5:
    def test_all_within_bound(self):
        t = e5_price_vs_P(P_values=(4.0, 16.0), k_values=(1, 2), n=30, repeats=2)
        assert all(t.column("within"))

    def test_price_grows_with_P(self):
        t = e5_price_vs_P(P_values=(4.0, 64.0), k_values=(1,), n=40, repeats=2)
        prices = t.column("price")
        assert prices[-1] >= prices[0] - 0.2


class TestE6:
    def test_price_grows_with_L(self):
        t = e6_price_lower_bound(k_values=(1,), L_values=(1, 2, 3))
        prices = t.column("price")
        assert prices == sorted(prices)
        assert prices[-1] > 2.0

    def test_our_alg_hits_the_cap(self):
        t = e6_price_lower_bound(k_values=(1, 2), L_values=(1, 2))
        for alg, cap in zip(t.column("ALG_k (ours)"), t.column("OPT_k cap")):
            assert alg == pytest.approx(cap)


class TestE7:
    def test_chain_price_equals_n(self):
        t = e7_k0_geometric_chain(n_values=(2, 5))
        assert t.column("price") == [2.0, 5.0]

    def test_upper_bound_within(self):
        t = e7_k0_upper_bound(n=25, P_values=(4.0, 16.0), repeats=2)
        assert all(t.column("within"))


class TestE8E9E10:
    def test_e8_structure(self):
        t = e8_multimachine(machines_values=(1, 2), k=1, n=20)
        assert len(t.rows) == 4  # two instances x two machine counts

    def test_e9_linear_ish(self):
        t = e9_runtime_scaling(n_values=(500, 2000), k=2)
        per_node = t.column("TM us/node")
        # Per-node cost should not explode by more than ~4x across 4x sizes.
        assert per_node[-1] <= per_node[0] * 4 + 5

    def test_e10_tm_beats_lc(self):
        t = e10_ablations(n=30, repeats=2)
        rows = {(r[0], r[1]): r[3] for r in t.rows}
        assert rows[("k-BAS algorithm", "TM (optimal)")] >= rows[
            ("k-BAS algorithm", "LevelledContraction")
        ]


class TestE11E12:
    def test_e11_pipeline_wins_adversarial(self):
        from repro.analysis.experiments import e11_extensions

        t = e11_extensions(k=2, n=20, repeats=1)
        rows = {(r[0], r[1]): r[4] for r in t.rows}
        adv = "appendix-B (adversarial)"
        assert rows[(adv, "pipeline (Alg 3)")] >= rows[(adv, "budget-EDF (no bound)")]

    def test_e13_charging_holds(self):
        from repro.analysis.experiments import e13_charging_argument

        t = e13_charging_argument(k_values=(1, 2), n=40, repeats=1)
        assert all(t.column("busy-floor ok"))
        assert all(t.column("cover ok"))
        assert all(t.column("parity disjoint"))

    def test_e12_bounds_hold(self):
        from repro.analysis.experiments import e12_strict_windows

        t = e12_strict_windows(k_values=(1, 2))
        for L, bound in zip(t.column("layers L"), t.column("bound log_{k+1}(P·λmax)")):
            assert L <= bound + 1
        for kept, floor in zip(t.column("kept ratio"), t.column("floor 1/log_{k+1} P")):
            assert kept >= floor - 1e-9


class TestRegistry:
    def test_all_registered(self):
        assert set(EXPERIMENTS) == {
            "e1", "e2", "e3", "e4", "e5", "e6", "e7a", "e7b",
            "e8", "e9", "e10", "e11", "e12", "e13", "e14", "e15", "e16", "e17",
        }

    def test_run_experiment_unknown(self):
        with pytest.raises(KeyError):
            run_experiment("e99")

    def test_run_experiment_dispatch(self):
        t = run_experiment("e7a")
        assert t.rows
