"""Unit tests for the RNG plumbing."""

import numpy as np

from repro.utils.rng import make_rng, shuffled, spawn_rngs


class TestMakeRng:
    def test_from_int(self):
        rng = make_rng(42)
        assert isinstance(rng, np.random.Generator)

    def test_passthrough_generator(self):
        rng = np.random.default_rng(0)
        assert make_rng(rng) is rng

    def test_deterministic(self):
        assert make_rng(7).random() == make_rng(7).random()


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_streams_differ(self):
        rngs = spawn_rngs(0, 3)
        draws = [r.random() for r in rngs]
        assert len(set(draws)) == 3

    def test_reproducible(self):
        a = [r.random() for r in spawn_rngs(99, 4)]
        b = [r.random() for r in spawn_rngs(99, 4)]
        assert a == b

    def test_prefix_stability(self):
        # Asking for more streams must not change the earlier ones.
        a = [r.random() for r in spawn_rngs(1, 2)]
        b = [r.random() for r in spawn_rngs(1, 5)][:2]
        assert a == b


class TestShuffled:
    def test_is_permutation(self):
        items = list(range(20))
        out = shuffled(items, 3)
        assert sorted(out) == items

    def test_input_untouched(self):
        items = [3, 1, 2]
        shuffled(items, 0)
        assert items == [3, 1, 2]

    def test_deterministic(self):
        assert shuffled(range(10), 5) == shuffled(range(10), 5)
