"""Tests for the bursty/diurnal trace generators."""

import pytest

from repro.core.combined import schedule_k_bounded
from repro.instances.random_jobs import random_jobs
from repro.instances.traces import bursty_trace, burstiness_index, diurnal_trace
from repro.scheduling.verify import verify_schedule


class TestBurstyTrace:
    def test_count_and_determinism(self):
        a = bursty_trace(40, seed=0)
        b = bursty_trace(40, seed=0)
        assert a.n == 40
        assert [j.release for j in a] == [j.release for j in b]

    def test_bursts_are_burstier_than_uniform(self):
        bursty = bursty_trace(120, gap_mean=50.0, seed=1)
        uniform = random_jobs(120, horizon=float(bursty.horizon[1]), seed=1)
        assert burstiness_index(bursty) > burstiness_index(uniform)

    def test_laxity_range_respected(self):
        jobs = bursty_trace(50, laxity_range=(2.0, 3.0), seed=2)
        for j in jobs:
            assert 2.0 - 1e-9 <= j.laxity <= 3.0 + 1e-9

    def test_schedulable_end_to_end(self):
        jobs = bursty_trace(30, seed=3)
        s = schedule_k_bounded(jobs, 2, exact_opt=False)
        verify_schedule(s, k=2).assert_ok()
        assert s.value > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            bursty_trace(0)
        with pytest.raises(ValueError):
            bursty_trace(5, burst_size_mean=0.5)


class TestDiurnalTrace:
    def test_count_and_ids_chronological(self):
        jobs = diurnal_trace(60, seed=4)
        assert jobs.n == 60
        releases = [j.release for j in jobs]
        assert releases == sorted(releases)
        assert jobs.ids == list(range(60))

    def test_two_populations(self):
        jobs = diurnal_trace(150, seed=5)
        short = [j for j in jobs if j.length <= 4.0]
        long = [j for j in jobs if j.length >= 7.0]
        assert short and long

    def test_peak_concentration(self):
        # More arrivals land in the high-intensity half of the day.
        day = 240.0
        jobs = diurnal_trace(300, day_length=day, days=1, peak_to_trough=6.0, seed=6)
        peak_half = sum(1 for j in jobs if (float(j.release) % day) < day / 2)
        assert peak_half > jobs.n / 2

    def test_schedulable_end_to_end(self):
        jobs = diurnal_trace(30, seed=7)
        s = schedule_k_bounded(jobs, 1, exact_opt=False)
        verify_schedule(s, k=1).assert_ok()

    def test_validation(self):
        with pytest.raises(ValueError):
            diurnal_trace(0)
        with pytest.raises(ValueError):
            diurnal_trace(5, peak_to_trough=0.5)


class TestBurstinessIndex:
    def test_single_job(self):
        jobs = bursty_trace(1, seed=8)
        assert burstiness_index(jobs) == 0.0

    def test_simultaneous_releases(self):
        from repro.scheduling.job import make_jobs

        jobs = make_jobs([(5, 10, 1) for _ in range(4)])
        assert burstiness_index(jobs) == float("inf")
