"""Unit tests for the CLI front end."""

import pytest

from repro.cli import main


class TestList:
    def test_lists_all(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("e1", "e6", "e7a", "e10"):
            assert name in out


class TestRun:
    def test_run_single(self, capsys):
        assert main(["run", "e7a"]) == 0
        out = capsys.readouterr().out
        assert "geometric chain" in out

    def test_run_markdown(self, capsys):
        assert main(["run", "e7a", "--markdown"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("###")
        assert "|" in out

    def test_run_multiple(self, capsys):
        assert main(["run", "e1", "e7a"]) == 0
        out = capsys.readouterr().out
        assert "Appendix-A" in out and "geometric chain" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "e99"])


class TestDemo:
    def test_demo_runs(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "OPT_inf" in out
        assert "k=0" in out and "k=2" in out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
