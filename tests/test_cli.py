"""Unit tests for the CLI front end."""

import pytest

from repro.cli import main


class TestList:
    def test_lists_all(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("e1", "e6", "e7a", "e10"):
            assert name in out


class TestRun:
    def test_run_single(self, capsys):
        assert main(["run", "e7a"]) == 0
        out = capsys.readouterr().out
        assert "geometric chain" in out

    def test_run_markdown(self, capsys):
        assert main(["run", "e7a", "--markdown"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("###")
        assert "|" in out

    def test_run_multiple(self, capsys):
        assert main(["run", "e1", "e7a"]) == 0
        out = capsys.readouterr().out
        assert "Appendix-A" in out and "geometric chain" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "e99"])


class TestDemo:
    def test_demo_runs(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "OPT_inf" in out
        assert "k=0" in out and "k=2" in out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_subcommand_exits_2_with_usage(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["frobnicate"])
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "invalid choice" in err and "frobnicate" in err


class TestFuzzErrorPaths:
    def test_bad_replay_file_exits_2_with_stderr(self, capsys, tmp_path):
        missing = tmp_path / "nope.json"
        assert main(["fuzz", "--replay", str(missing)]) == 2
        err = capsys.readouterr().err
        assert "cannot replay" in err and "nope.json" in err

    def test_unparseable_replay_file_exits_2(self, capsys, tmp_path):
        garbage = tmp_path / "garbage.json"
        garbage.write_text("{not json")
        assert main(["fuzz", "--replay", str(garbage)]) == 2
        err = capsys.readouterr().err
        assert "cannot replay" in err

    def test_smoke_contradicts_instances(self, capsys):
        assert main(["fuzz", "--smoke", "--instances", "5"]) == 2
        err = capsys.readouterr().err
        assert "--smoke" in err and "--instances" in err

    def test_replay_contradicts_fuzz_flags(self, capsys, tmp_path):
        case = tmp_path / "case.json"
        case.write_text("{}")
        assert main(["fuzz", "--replay", str(case), "--smoke"]) == 2
        err = capsys.readouterr().err
        assert "--replay" in err and "--smoke" in err
        assert (
            main(["fuzz", "--replay", str(case), "--inject-fault", "tm.loop.topk-order"])
            == 2
        )
        err = capsys.readouterr().err
        assert "--inject-fault" in err

    def test_unknown_fault_rejected_before_fuzzing(self, capsys):
        assert main(["fuzz", "--inject-fault", "no.such.fault"]) == 2
        err = capsys.readouterr().err
        assert "unknown fault" in err and "no.such.fault" in err

    def test_list_oracles_includes_serve_pair(self, capsys):
        assert main(["fuzz", "--list-oracles"]) == 0
        out = capsys.readouterr().out
        assert "served-vs-direct" in out


class TestServeBench:
    def test_serve_bench_reports_speedup(self, capsys, tmp_path):
        out = tmp_path / "serve.json"
        assert (
            main(
                [
                    "serve-bench", "--requests", "60", "--seed", "7",
                    "--corpus", "6", "--n", "8", "--json", str(out),
                ]
            )
            == 0
        )
        text = capsys.readouterr().out
        assert "cached p50 speedup" in text
        # The summary line reports every service counter, batched included.
        assert "batched=" in text
        import json

        payload = json.loads(out.read_text())
        assert payload["requests"] == 60
        assert payload["stats"]["hits"] == 60
        assert "batched" in payload["stats"]
        assert payload["cached_p50_ms"] > 0
        assert payload["p50_speedup"] > 1

    def test_serve_bench_min_speedup_gate(self, capsys):
        # An impossible gate must flip the exit code, not crash.
        assert (
            main(
                [
                    "serve-bench", "--requests", "20", "--corpus", "4",
                    "--n", "6", "--min-speedup", "1e9",
                ]
            )
            == 1
        )
        err = capsys.readouterr().err
        assert "below required" in err

    def test_serve_bench_rejects_bad_requests(self, capsys):
        assert main(["serve-bench", "--requests", "0"]) == 2
        assert "--requests" in capsys.readouterr().err


class TestGatewayBench:
    def test_gateway_bench_inline_reports_and_writes_json(self, capsys, tmp_path):
        out = tmp_path / "gateway.json"
        assert (
            main(
                [
                    "gateway-bench", "--inline", "--shards", "2",
                    "--rps", "40", "--duration", "1", "--corpus", "6",
                    "--n", "6", "--max-p99-ms", "5000", "--out", str(out),
                ]
            )
            == 0
        )
        text = capsys.readouterr().out
        assert "latency p50" in text
        assert "shard 0:" in text and "shard 1:" in text
        assert "disagreements=0" in text
        import json

        payload = json.loads(out.read_text())
        assert payload["format"] == "repro-gateway-bench/1"
        assert payload["disagreements"] == 0
        assert payload["route_mismatches"] == 0
        assert all(s["hits"] > 0 for s in payload["per_shard"])

    def test_gateway_bench_p99_gate_flips_exit_code(self, capsys):
        assert (
            main(
                [
                    "gateway-bench", "--inline", "--shards", "2",
                    "--rps", "30", "--duration", "1", "--corpus", "4",
                    "--n", "6", "--max-p99-ms", "0.000001",
                ]
            )
            == 1
        )
        assert "above SLO" in capsys.readouterr().err

    def test_gateway_bench_rejects_bad_shards(self, capsys):
        assert main(["gateway-bench", "--shards", "0", "--inline"]) == 2
        assert "--shards" in capsys.readouterr().err
