"""Property-based tests for EDF: feasibility semantics, laminarity and
monotonicity over random integral instances."""

from hypothesis import assume, given

from repro.scheduling.edf import edf_accept_max_subset, edf_feasible, edf_schedule
from repro.scheduling.exact import k_feasible_subset_small
from repro.scheduling.laminar import is_laminar
from repro.scheduling.verify import verify_schedule
from tests.strategies import integral_jobsets


@given(integral_jobsets())
def test_edf_schedule_verifies_when_feasible(jobs):
    res = edf_schedule(jobs)
    if res.feasible:
        verify_schedule(res.schedule).assert_ok()
        assert res.schedule.value == jobs.total_value


@given(integral_jobsets())
def test_edf_output_laminar(jobs):
    res = edf_schedule(jobs)
    if res.feasible:
        assert is_laminar(res.schedule)


@given(integral_jobsets())
def test_feasibility_is_subset_monotone(jobs):
    if edf_feasible(jobs):
        for drop in jobs.ids[: min(3, jobs.n)]:
            assert edf_feasible(jobs.without([drop]))


@given(integral_jobsets())
def test_edf_agrees_with_slot_oracle(jobs):
    """Exact cross-check: EDF feasibility == existence of an unbounded
    (k = horizon) slot schedule on small integral instances."""
    horizon = int(jobs.horizon[1] - jobs.horizon[0])
    assume(horizon <= 24)
    oracle = k_feasible_subset_small(jobs, k=horizon, max_slots=24)
    assert edf_feasible(jobs) == (oracle is not None)


@given(integral_jobsets())
def test_greedy_admission_always_feasible_and_never_empty_on_feasible_job(jobs):
    s = edf_accept_max_subset(jobs)
    verify_schedule(s).assert_ok()
    # At least the densest individually-feasible job is accepted.
    assert len(s) >= 1


@given(integral_jobsets())
def test_greedy_admission_value_at_most_total(jobs):
    s = edf_accept_max_subset(jobs)
    assert s.value <= jobs.total_value
    if edf_feasible(jobs):
        assert s.value == jobs.total_value
