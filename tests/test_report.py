"""Tests for the reproduction-report orchestrator."""

import pytest

from repro.analysis.report import (
    ExperimentOutcome,
    render_report,
    run_full_report,
    write_report,
)
from repro.analysis.tables import Table


class TestRunFullReport:
    def test_selected_subset(self):
        outcomes = run_full_report(names=["e7a", "e1"])
        assert [o.name for o in outcomes] == ["e7a", "e1"]
        assert all(o.ok for o in outcomes)
        assert all(o.table is not None for o in outcomes)

    def test_timings_recorded(self):
        outcomes = run_full_report(names=["e7a"])
        assert outcomes[0].seconds >= 0

    def test_keep_going_records_failure(self, monkeypatch):
        from repro.analysis import experiments

        def boom():
            raise RuntimeError("synthetic failure")

        monkeypatch.setitem(experiments.EXPERIMENTS, "e_boom", boom)
        outcomes = run_full_report(names=["e_boom", "e7a"])
        assert not outcomes[0].ok
        assert "synthetic failure" in outcomes[0].error
        assert outcomes[1].ok

    def test_fail_fast(self, monkeypatch):
        from repro.analysis import experiments

        def boom():
            raise RuntimeError("synthetic failure")

        monkeypatch.setitem(experiments.EXPERIMENTS, "e_boom", boom)
        with pytest.raises(RuntimeError):
            run_full_report(names=["e_boom"], keep_going=False)


class TestRenderReport:
    def test_summary_line(self):
        t = Table("demo", ["a"])
        t.add_row(1)
        outcomes = [
            ExperimentOutcome("e_x", True, 0.1, t, None),
            ExperimentOutcome("e_y", False, 0.2, None, "boom"),
        ]
        md = render_report(outcomes)
        assert "1/2 experiments passed" in md
        assert "✓" in md and "✗" in md
        assert "### demo" in md


class TestWriteReport:
    def test_writes_file(self, tmp_path):
        path = tmp_path / "REPORT.md"
        outcomes = write_report(str(path), names=["e7a"])
        assert outcomes[0].ok
        assert "experiments passed" in path.read_text()

    def test_cli_report_command(self, tmp_path, capsys, monkeypatch):
        from repro.analysis import experiments
        from repro.analysis.experiments import e7_k0_geometric_chain
        from repro.cli import main

        # Shrink the registry so the CLI test stays fast; the full-suite run
        # is exercised by `python -m repro report` in the benchmark docs.
        from repro.analysis import report as report_module

        monkeypatch.setattr(
            report_module, "EXPERIMENTS", {"e7a": e7_k0_geometric_chain}
        )
        out = tmp_path / "r.md"
        assert main(["report", "--out", str(out)]) == 0
        assert "1/1 experiments passed" in capsys.readouterr().out
        assert out.exists()
