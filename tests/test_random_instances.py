"""Unit tests for the random instance generators."""

import pytest

from repro.core.reduction import schedule_to_forest
from repro.instances.random_jobs import (
    laminar_job_chain,
    random_jobs,
    random_lax_jobs,
    random_strict_jobs,
)
from repro.instances.random_trees import (
    caterpillar,
    preferential_attachment_tree,
    random_attachment_tree,
    random_forest,
    random_values,
)
from repro.scheduling.edf import edf_feasible, edf_schedule


class TestRandomTrees:
    def test_attachment_size_and_connectivity(self):
        f = random_attachment_tree(100, seed=0)
        assert f.n == 100
        assert f.roots == (0,)

    def test_attachment_deterministic_by_seed(self):
        a = random_attachment_tree(50, seed=7)
        b = random_attachment_tree(50, seed=7)
        assert [a.parent(v) for v in range(50)] == [b.parent(v) for v in range(50)]

    def test_preferential_has_hubs(self):
        f = preferential_attachment_tree(300, seed=1)
        assert f.max_degree >= 5  # hubs emerge with high probability

    def test_caterpillar_shape(self):
        f = caterpillar(4, 3)
        assert f.n == 16
        spine_degrees = [f.degree(v) for v in range(f.n) if not f.is_leaf(v)]
        assert all(d in (3, 4) for d in spine_degrees)

    def test_random_forest_tree_count(self):
        f = random_forest(60, trees=4, seed=2)
        assert len(f.roots) == 4
        assert f.n == 60

    def test_random_forest_shapes(self):
        for shape in ("attachment", "preferential", "mixed"):
            f = random_forest(40, trees=2, shape=shape, seed=3)
            assert f.n == 40

    def test_random_forest_bad_shape(self):
        with pytest.raises(ValueError):
            random_forest(10, shape="bogus", seed=0)

    def test_value_models(self):
        base = random_attachment_tree(50, seed=4)
        for model in ("unit", "uniform", "depth_exponential", "heavy"):
            f = random_values(base, model=model, seed=5)
            assert f.n == 50
            assert all(f.value(v) > 0 for v in range(50))

    def test_depth_exponential_matches_depths(self):
        base = random_attachment_tree(30, seed=6)
        f = random_values(base, model="depth_exponential")
        depths = f.depths()
        max_d = max(depths)
        for v in range(f.n):
            assert f.value(v) == 2 ** (max_d - depths[v])

    def test_bad_value_model(self):
        with pytest.raises(ValueError):
            random_values(random_attachment_tree(5, seed=0), model="nope")


class TestRandomJobs:
    def test_count_and_ranges(self):
        jobs = random_jobs(50, length_range=(2.0, 8.0), laxity_range=(1.5, 3.0), seed=0)
        assert jobs.n == 50
        for j in jobs:
            assert 2.0 - 1e-9 <= j.length <= 8.0 + 1e-9
            assert 1.5 - 1e-9 <= j.laxity <= 3.0 + 1e-9

    def test_deterministic_by_seed(self):
        a = random_jobs(20, seed=42)
        b = random_jobs(20, seed=42)
        assert [(j.release, j.length) for j in a] == [(j.release, j.length) for j in b]

    def test_value_models(self):
        for model in ("unit", "uniform", "density", "independent"):
            jobs = random_jobs(20, value_model=model, seed=1)
            assert all(j.value > 0 for j in jobs)

    def test_density_model_unit_density(self):
        jobs = random_jobs(20, value_model="density", seed=2)
        for j in jobs:
            assert j.density == pytest.approx(1.0)

    def test_bad_ranges(self):
        with pytest.raises(ValueError):
            random_jobs(5, length_range=(0, 1))
        with pytest.raises(ValueError):
            random_jobs(5, laxity_range=(0.5, 2.0))
        with pytest.raises(ValueError):
            random_jobs(0)

    def test_lax_jobs_are_lax(self):
        for k in (1, 2, 3):
            jobs = random_lax_jobs(30, k, seed=3)
            assert all(j.laxity >= k + 1 - 1e-9 for j in jobs)

    def test_strict_jobs_are_strict(self):
        for k in (1, 2):
            jobs = random_strict_jobs(30, k, seed=4)
            assert all(j.laxity <= k + 1 + 1e-9 for j in jobs)


class TestLaminarJobChain:
    def test_size(self):
        assert laminar_job_chain(0, 3).n == 1
        assert laminar_job_chain(2, 2).n == 7
        assert laminar_job_chain(2, 3).n == 13

    def test_edf_feasible(self):
        for depth, b in [(1, 2), (2, 3), (3, 2)]:
            assert edf_feasible(laminar_job_chain(depth, b))

    def test_forest_shape_is_b_ary(self):
        jobs = laminar_job_chain(3, 2)
        sched = edf_schedule(jobs).schedule
        forest, _ = schedule_to_forest(sched)
        assert forest.n == 15
        internal_degrees = {forest.degree(v) for v in range(forest.n) if forest.degree(v)}
        assert internal_degrees == {2}

    def test_validation(self):
        with pytest.raises(ValueError):
            laminar_job_chain(-1, 2)
        with pytest.raises(ValueError):
            laminar_job_chain(2, 0)
