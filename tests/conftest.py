"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

from typing import List

import pytest
from hypothesis import HealthCheck, settings

from repro.scheduling.job import Job, JobSet, make_jobs

# Keep hypothesis fast and deterministic in CI-style runs.
settings.register_profile(
    "repro",
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--update-goldens",
        action="store_true",
        default=False,
        help="rewrite the golden regression files (tests/goldens/) from the "
        "current solver output instead of comparing against them",
    )


@pytest.fixture
def update_goldens(request: pytest.FixtureRequest) -> bool:
    """Whether this run should rewrite golden files instead of asserting."""
    return bool(request.config.getoption("--update-goldens"))


@pytest.fixture
def simple_jobs() -> JobSet:
    """Five hand-checkable jobs used across the substrate tests.

    All five are EDF-feasible together (total work 27 inside [0, 28]).
    """
    return make_jobs(
        [
            (0, 12, 5, 6.0),
            (1, 7, 4, 5.0),
            (3, 9, 3, 4.0),
            (2, 20, 6, 3.0),
            (8, 28, 9, 7.0),
        ]
    )


@pytest.fixture
def overloaded_jobs() -> JobSet:
    """Three jobs competing for the same tight window: only some fit."""
    return make_jobs(
        [
            (0, 4, 4, 10.0),
            (0, 4, 4, 7.0),
            (0, 8, 4, 5.0),
        ]
    )


@pytest.fixture
def single_job() -> JobSet:
    return make_jobs([(0, 10, 4, 2.0)])
