"""The ``repro bench`` trajectory file: append semantics and damage recovery.

Regression tests for the bug where a ``BENCH_perf.json`` that existed but
had no ``runs`` key left the tracked trajectory permanently empty — every
bench run rewrote the file without ever accumulating history.  The append
path must absorb every on-disk shape it can meet: missing file, empty
file, invalid JSON, the legacy single-run schema-1 payload, and trajectory
dicts with a missing or malformed ``runs`` key.
"""

import json

import pytest

from repro.analysis.perf import (
    RUN_SCHEMA,
    TRAJECTORY_SCHEMA,
    _load_runs,
    append_run,
    run_bench,
)


def _fake_run(tag):
    return {
        "schema": RUN_SCHEMA,
        "quick": True,
        "records": [
            {
                "op": f"fake[{tag}]", "n": 10, "k": None, "reps": 1,
                "median_ms": 1.0, "p90_ms": 1.0, "speedup_vs_reference": None,
            }
        ],
    }


def _read(path):
    return json.loads(path.read_text())


def test_append_creates_missing_file(tmp_path):
    out = tmp_path / "BENCH_perf.json"
    trajectory = append_run(str(out), _fake_run("first"))
    assert trajectory == _read(out)
    assert trajectory["schema"] == TRAJECTORY_SCHEMA
    assert [r["records"][0]["op"] for r in trajectory["runs"]] == ["fake[first]"]


def test_append_accumulates_runs(tmp_path):
    out = tmp_path / "BENCH_perf.json"
    append_run(str(out), _fake_run("a"))
    append_run(str(out), _fake_run("b"))
    trajectory = append_run(str(out), _fake_run("c"))
    assert [r["records"][0]["op"] for r in trajectory["runs"]] == [
        "fake[a]", "fake[b]", "fake[c]",
    ]


def test_append_to_empty_file(tmp_path):
    out = tmp_path / "BENCH_perf.json"
    out.write_text("")
    trajectory = append_run(str(out), _fake_run("x"))
    assert len(trajectory["runs"]) == 1


def test_append_to_invalid_json(tmp_path):
    out = tmp_path / "BENCH_perf.json"
    out.write_text("{not json")
    trajectory = append_run(str(out), _fake_run("x"))
    assert len(trajectory["runs"]) == 1
    # The rewrite healed the file: the next append sees a valid trajectory.
    assert len(append_run(str(out), _fake_run("y"))["runs"]) == 2


def test_append_migrates_legacy_schema1_payload(tmp_path):
    out = tmp_path / "BENCH_perf.json"
    legacy = _fake_run("legacy")
    out.write_text(json.dumps(legacy))
    trajectory = append_run(str(out), _fake_run("new"))
    assert [r["records"][0]["op"] for r in trajectory["runs"]] == [
        "fake[legacy]", "fake[new]",
    ]


@pytest.mark.parametrize(
    "on_disk",
    [
        {"schema": TRAJECTORY_SCHEMA},                      # the reported bug
        {"schema": TRAJECTORY_SCHEMA, "runs": "oops"},      # malformed runs
        {"schema": TRAJECTORY_SCHEMA, "runs": None},
        [1, 2, 3],                                          # not even a dict
    ],
)
def test_append_initialises_when_runs_key_unusable(tmp_path, on_disk):
    out = tmp_path / "BENCH_perf.json"
    out.write_text(json.dumps(on_disk))
    trajectory = append_run(str(out), _fake_run("x"))
    assert trajectory["schema"] == TRAJECTORY_SCHEMA
    assert len(trajectory["runs"]) == 1
    assert _read(out) == trajectory


def test_append_refuses_newer_on_disk_schema(tmp_path):
    # A trajectory written by a future library version must not be silently
    # rewritten (downgraded) by this one.
    out = tmp_path / "BENCH_perf.json"
    newer = {"schema": "repro-bench-perf/99", "runs": [_fake_run("future")]}
    out.write_text(json.dumps(newer))
    with pytest.raises(ValueError, match="refusing to silently downgrade"):
        append_run(str(out), _fake_run("x"))
    assert _read(out) == newer  # file untouched


def test_append_refuses_unversioned_run_payload(tmp_path):
    out = tmp_path / "BENCH_perf.json"
    bad = _fake_run("x")
    del bad["schema"]
    with pytest.raises(ValueError, match="append_run only accepts"):
        append_run(str(out), bad)
    with pytest.raises(ValueError):
        append_run(str(out), {**_fake_run("y"), "schema": "something-else/3"})
    assert not out.exists()


def test_load_runs_skips_non_dict_entries(tmp_path):
    out = tmp_path / "BENCH_perf.json"
    out.write_text(json.dumps({"schema": TRAJECTORY_SCHEMA, "runs": [_fake_run("a"), 7, None]}))
    assert [r["records"][0]["op"] for r in _load_runs(str(out))] == ["fake[a]"]


def test_run_bench_appends_and_returns_current_run(tmp_path, monkeypatch):
    # Stub every benchmark so this is an I/O test, not a timing run.
    import repro.analysis.perf as perf

    for name in (
        "bench_tm_kernels", "bench_tm_batched", "bench_sweep_engine",
        "bench_edf_cache", "bench_opt_exact", "bench_forest_traversals",
        "bench_tracer_overhead", "bench_serve_cache", "bench_store_prewarm",
    ):
        monkeypatch.setattr(perf, name, lambda **kw: [])
    out = tmp_path / "BENCH_perf.json"
    first = run_bench(quick=True, out=str(out))
    second = run_bench(quick=True, out=str(out))
    assert first["schema"] == RUN_SCHEMA and second["records"] == []
    on_disk = _read(out)
    assert on_disk["schema"] == TRAJECTORY_SCHEMA
    assert on_disk["runs"] == [first, second]


def test_run_bench_out_none_writes_nothing(tmp_path, monkeypatch):
    import repro.analysis.perf as perf

    for name in (
        "bench_tm_kernels", "bench_tm_batched", "bench_sweep_engine",
        "bench_edf_cache", "bench_opt_exact", "bench_forest_traversals",
        "bench_tracer_overhead", "bench_serve_cache", "bench_store_prewarm",
    ):
        monkeypatch.setattr(perf, name, lambda **kw: [])
    monkeypatch.chdir(tmp_path)
    payload = run_bench(quick=True, out=None)
    assert payload["schema"] == RUN_SCHEMA
    assert list(tmp_path.iterdir()) == []