"""Unit tests for MaxContract and LevelledContraction (Algorithm 1)."""

import math

import pytest

from repro.core.bas.bounds import bas_loss_bound
from repro.core.bas.contraction import levelled_contraction, max_contract
from repro.core.bas.forest import Forest
from repro.core.bas.tm import tm_optimal_value
from repro.core.bas.verify import verify_bas


class TestMaxContract:
    def test_path_contracts_to_root(self):
        # Every node of a path is 1-contractible: one leaf survives.
        f = Forest.path(6)
        leaves, absorbed = max_contract(f, 1)
        assert leaves == [0]
        assert sorted(absorbed[0]) == list(range(6))

    def test_star_contracts_only_leaves(self):
        # Root of a 5-star has degree 5 > k: leaves stay separate.
        f = Forest.star(6)
        leaves, absorbed = max_contract(f, 2)
        assert sorted(leaves) == [1, 2, 3, 4, 5]
        assert all(absorbed[v] == [v] for v in leaves)

    def test_complete_binary_k1(self):
        # Degree 2 > 1 everywhere internal: only the real leaves survive.
        f = Forest.complete(2, 3)
        leaves, _ = max_contract(f, 1)
        assert len(leaves) == 8

    def test_complete_binary_k2_contracts_whole_tree(self):
        f = Forest.complete(2, 3)
        leaves, absorbed = max_contract(f, 2)
        assert leaves == [0]
        assert len(absorbed[0]) == f.n

    def test_observation_3_13_internal_nodes_heavy(self):
        # After MaxContract every surviving internal node has > k children.
        f = Forest([-1, 0, 0, 0, 1, 1, 2, 3, 3, 3], [1] * 10)
        leaves, _ = max_contract(f, 1)
        leafset = set(leaves)
        # Survivors: node 0 and any internal nodes not contracted.
        # Check via reconstructing survivor degrees: every survivor not in
        # the leaf set must have at least k+1 surviving children... verified
        # indirectly: no leaf's parent is itself contractible into a leaf.
        for v in leaves:
            p = f.parent(v)
            if p != -1:
                assert p not in leafset

    def test_k_zero_rejected(self):
        with pytest.raises(ValueError):
            max_contract(Forest.path(3), 0)

    def test_value_conservation(self):
        f = Forest([-1, 0, 0, 1, 1], [5, 4, 3, 2, 1])
        leaves, absorbed = max_contract(f, 2)
        # k=2 contracts everything into the root.
        assert leaves == [0]
        assert sum(f.value(v) for v in absorbed[0]) == f.total_value


class TestLevelledContractionLayers:
    def test_layers_partition_nodes(self):
        f = Forest.complete(3, 3)
        trace = levelled_contraction(f, 2)
        all_nodes = sorted(
            v for layer in trace.layers for v in layer.all_original_nodes
        )
        assert all_nodes == list(range(f.n))

    def test_layers_partition_value_lemma_3_17(self):
        f = Forest.complete(3, 4)
        trace = levelled_contraction(f, 1)
        assert sum(layer.value for layer in trace.layers) == pytest.approx(
            f.total_value
        )

    def test_iteration_bound_lemma_3_18(self):
        for branching, k in [(2, 1), (3, 1), (3, 2), (4, 2)]:
            f = Forest.complete(branching, 4)
            trace = levelled_contraction(f, k)
            assert trace.num_iterations <= math.log(f.n) / math.log(k + 1) + 1

    def test_layer_sizes_decay_geometrically(self):
        f = Forest.complete(3, 5)
        trace = levelled_contraction(f, 1)
        sizes = trace.layer_sizes()
        for a, b in zip(sizes, sizes[1:]):
            assert a >= 2 * b  # |S_{i+1}| <= |S_i| / (k+1)

    def test_best_layer_is_max_value(self):
        f = Forest.complete(2, 4)
        trace = levelled_contraction(f, 1)
        assert trace.best_layer.value == max(trace.layer_values())


class TestLevelledContractionResult:
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_result_is_valid_bas(self, k):
        f = Forest([-1, 0, 0, 0, 1, 1, 2, 3, 3, 3, 6, 6, 6, 6], [1] * 14)
        bas = levelled_contraction(f, k).best_subforest()
        verify_bas(bas, k).assert_ok()

    def test_loss_within_theorem_3_9(self):
        for branching in (2, 3, 4):
            f = Forest.complete(branching, 4)
            for k in (1, 2):
                bas = levelled_contraction(f, k).best_subforest()
                loss = f.total_value / bas.value
                assert loss <= bas_loss_bound(f.n, k) + 1e-9

    def test_never_beats_tm(self):
        f = Forest([-1, 0, 0, 0, 1, 3, 3, 4], [1, 9, 2, 3, 9, 4, 4, 9])
        for k in (1, 2):
            lc = levelled_contraction(f, k).best_subforest().value
            assert lc <= tm_optimal_value(f, k) + 1e-9

    def test_path_single_iteration(self):
        f = Forest.path(8)
        trace = levelled_contraction(f, 1)
        assert trace.num_iterations == 1
        assert trace.best_subforest().value == f.total_value

    def test_forest_input(self):
        f = Forest([-1, 0, 0, -1, 3, 3], [1, 1, 1, 1, 1, 1])
        trace = levelled_contraction(f, 2)
        assert trace.best_subforest().value == f.total_value

    def test_single_node(self):
        f = Forest([-1], [5])
        trace = levelled_contraction(f, 1)
        assert trace.num_iterations == 1
        assert trace.best_subforest().value == 5

    def test_empty_forest_rejected(self):
        with pytest.raises(ValueError):
            levelled_contraction(Forest([], []), 1)

    def test_k_zero_rejected(self):
        with pytest.raises(ValueError):
            levelled_contraction(Forest.path(3), 0)
