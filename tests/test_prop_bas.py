"""Property-based tests for the k-BAS algorithms (TM, LevelledContraction).

These are the Section 3 invariants run over arbitrary random forests:
validity of the output, TM's dominance over LevelledContraction, the
Theorem 3.9 loss bound, and the Lemma 3.17/3.18 layer accounting.
"""

import math

import pytest
from hypothesis import given

from repro.core.bas.bounds import bas_loss_bound
from repro.core.bas.contraction import levelled_contraction
from repro.core.bas.tm import tm_optimal_bas, tm_optimal_value
from repro.core.bas.verify import verify_bas
from tests.strategies import forests_with_k


@given(forests_with_k())
def test_tm_output_is_valid_bas(fk):
    forest, k = fk
    bas = tm_optimal_bas(forest, k)
    verify_bas(bas, k).assert_ok()


@given(forests_with_k())
def test_tm_value_matches_replayed_set(fk):
    forest, k = fk
    bas = tm_optimal_bas(forest, k)
    assert bas.value == pytest.approx(tm_optimal_value(forest, k))


@given(forests_with_k())
def test_contraction_output_is_valid_bas(fk):
    forest, k = fk
    bas = levelled_contraction(forest, k).best_subforest()
    verify_bas(bas, k).assert_ok()


@given(forests_with_k())
def test_tm_dominates_contraction(fk):
    forest, k = fk
    tm_val = tm_optimal_value(forest, k)
    lc_val = levelled_contraction(forest, k).best_subforest().value
    assert tm_val >= lc_val - 1e-9 * max(1.0, abs(lc_val))


@given(forests_with_k())
def test_theorem_3_9_loss_bound(fk):
    # The provable factor is the integer layer count ⌊log_{k+1} n⌋ + 1, not
    # the raw real log (a 4-node uniform star with k=2 loses 4/3 > log_3 4).
    forest, k = fk
    bound = bas_loss_bound(forest.n, k)
    tm_val = tm_optimal_value(forest, k)
    assert tm_val * bound >= forest.total_value * (1 - 1e-9)


@given(forests_with_k())
def test_layers_partition_value_lemma_3_17(fk):
    forest, k = fk
    trace = levelled_contraction(forest, k)
    assert sum(layer.value for layer in trace.layers) == pytest.approx(
        forest.total_value
    )


@given(forests_with_k())
def test_layers_partition_nodes(fk):
    forest, k = fk
    trace = levelled_contraction(forest, k)
    nodes = sorted(v for layer in trace.layers for v in layer.all_original_nodes)
    assert nodes == list(range(forest.n))


@given(forests_with_k())
def test_iteration_count_lemma_3_18(fk):
    forest, k = fk
    trace = levelled_contraction(forest, k)
    bound = math.log(forest.n) / math.log(k + 1) if forest.n > 1 else 0
    assert trace.num_iterations <= bound + 1


@given(forests_with_k())
def test_layer_sizes_geometric_decay(fk):
    forest, k = fk
    sizes = levelled_contraction(forest, k).layer_sizes()
    for a, b in zip(sizes, sizes[1:]):
        assert a >= (k + 1) * b


@given(forests_with_k())
def test_tm_monotone_in_k(fk):
    forest, k = fk
    if k >= 2:
        assert tm_optimal_value(forest, k) >= tm_optimal_value(forest, k - 1) - 1e-9


@given(forests_with_k())
def test_tm_never_exceeds_total(fk):
    forest, k = fk
    assert tm_optimal_value(forest, k) <= forest.total_value + 1e-9
