"""Tests for the context-switch cost model and budget chooser."""

import pytest

from repro.core.preemption_cost import (
    BudgetChoice,
    net_value,
    optimal_budget,
    total_preemptions,
)
from repro.instances.lower_bounds import geometric_chain
from repro.instances.workloads import mixed_server_workload
from repro.scheduling.job import make_jobs
from repro.scheduling.schedule import Schedule
from repro.scheduling.segment import Segment


@pytest.fixture
def preempted_schedule():
    jobs = make_jobs([(0, 12, 6, 10.0), (2, 6, 2, 3.0)])
    return Schedule(
        jobs,
        {0: [Segment(0, 2), Segment(4, 8)], 1: [Segment(2, 4)]},
    )


class TestNetValue:
    def test_counts_switches(self, preempted_schedule):
        assert total_preemptions(preempted_schedule) == 1

    def test_net_value_formula(self, preempted_schedule):
        assert net_value(preempted_schedule, 0.0) == pytest.approx(13.0)
        assert net_value(preempted_schedule, 2.5) == pytest.approx(10.5)

    def test_rejects_negative_cost(self, preempted_schedule):
        with pytest.raises(ValueError):
            net_value(preempted_schedule, -1.0)

    def test_empty_schedule(self):
        jobs = make_jobs([(0, 4, 2)])
        s = Schedule(jobs, {})
        assert total_preemptions(s) == 0
        assert net_value(s, 5.0) == 0.0


class TestOptimalBudget:
    def test_zero_cost_prefers_value(self):
        jobs = geometric_chain(6)
        choice = optimal_budget(jobs, 0.0, k_values=(0, 1))
        assert choice.best_k == 1
        assert choice.best_net == pytest.approx(6.0 - 0.0)

    def test_high_cost_prefers_k0(self):
        jobs = geometric_chain(6)
        choice = optimal_budget(jobs, 10.0, k_values=(0, 1))
        assert choice.best_k == 0
        assert choice.best_net == pytest.approx(1.0)

    def test_chain_flip_point(self):
        # Each chain preemption buys one unit job: flip at c = 1.
        jobs = geometric_chain(5)
        below = optimal_budget(jobs, 0.9, k_values=(0, 1))
        above = optimal_budget(jobs, 1.1, k_values=(0, 1))
        assert below.best_k == 1
        assert above.best_k == 0

    def test_monotone_in_cost(self):
        jobs = mixed_server_workload(25, seed=0)
        ks = [
            optimal_budget(jobs, c, k_values=(0, 1, 2, 4)).best_k
            for c in (0.0, 1.0, 4.0, 16.0, 64.0)
        ]
        assert ks == sorted(ks, reverse=True)

    def test_trace_contains_all_budgets(self):
        jobs = mixed_server_workload(15, seed=1)
        choice = optimal_budget(jobs, 1.0, k_values=(0, 2))
        assert set(choice.trace) == {0, 2}

    def test_tie_prefers_smaller_k(self):
        # A single job: every budget nets the same; k = 0 must win.
        jobs = make_jobs([(0, 10, 4, 5.0)])
        choice = optimal_budget(jobs, 0.0, k_values=(0, 1, 2))
        assert choice.best_k == 0

    def test_custom_scheduler(self):
        jobs = make_jobs([(0, 10, 4, 5.0)])

        def sched(js, k):
            from repro.scheduling.schedule import best_single_job

            return best_single_job(js)

        choice = optimal_budget(jobs, 1.0, k_values=(0, 1), scheduler=sched)
        assert choice.best_net == pytest.approx(5.0)

    def test_scheduler_budget_violation_caught(self):
        jobs = make_jobs([(0, 12, 6)])

        def cheating(js, k):
            return Schedule(js, {0: [Segment(0, 2), Segment(4, 8)]})

        with pytest.raises(ValueError, match="preemptions at budget"):
            optimal_budget(jobs, 1.0, k_values=(0,), scheduler=cheating)
