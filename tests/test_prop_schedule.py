"""Property-based tests for segment algebra and timeline bookkeeping."""

from hypothesis import given
from hypothesis import strategies as st

from repro.scheduling.segment import (
    complement_within,
    disjoint,
    merge_touching,
    sort_segments,
    total_length,
)
from repro.scheduling.timeline import Timeline, allocate_leftmost
from tests.strategies import segment_lists


@given(segment_lists())
def test_merge_touching_idempotent(segs):
    once = merge_touching(segs)
    assert merge_touching(once) == once


@given(segment_lists())
def test_merge_touching_preserves_measure(segs):
    assert total_length(merge_touching(segs)) == total_length(segs)


@given(segment_lists())
def test_merge_output_strictly_separated(segs):
    out = merge_touching(segs)
    for a, b in zip(out, out[1:]):
        assert a.end < b.start


@given(segment_lists())
def test_complement_partitions_window(segs):
    gaps = complement_within(segs, 0, 100)
    clipped = [s.clip(0, 100) for s in segs]
    clipped = [s for s in clipped if s is not None]
    assert total_length(gaps) + total_length(clipped) == 100
    assert disjoint(gaps + clipped)


@given(segment_lists())
def test_complement_of_complement_restores_busy(segs):
    busy = merge_touching(segs)
    gaps = complement_within(busy, 0, 100)
    restored = complement_within(gaps, 0, 100)
    # Restored busy must equal the original busy clipped to [0, 100].
    expected = [s.clip(0, 100) for s in busy]
    expected = merge_touching([s for s in expected if s is not None])
    assert restored == expected


@given(segment_lists())
def test_sort_segments_ordered_and_permutation(segs):
    out = sort_segments(segs)
    assert sorted((s.start, s.end) for s in segs) == [(s.start, s.end) for s in out]
    for a, b in zip(out, out[1:]):
        assert a.start <= b.start


@given(segment_lists(), st.integers(min_value=1, max_value=50))
def test_timeline_book_then_idle_consistency(segs, probe_len):
    tl = Timeline()
    busy = merge_touching(segs)
    if busy:
        tl.book(busy)
    idles = tl.idle_in(0, 100)
    # Idle + busy tile the window exactly.
    clipped_busy = [s.clip(0, 100) for s in busy]
    clipped_busy = [s for s in clipped_busy if s is not None]
    assert total_length(idles) + total_length(clipped_busy) == 100
    # Every reported idle interval really is idle.
    for idle in idles:
        assert tl.is_idle(idle)


@given(segment_lists(), st.integers(min_value=1, max_value=60))
def test_allocate_leftmost_exactness(segs, need):
    idles = merge_touching(segs)
    pieces = allocate_leftmost(idles, need)
    capacity = total_length(idles)
    if capacity >= need:
        assert pieces is not None
        assert total_length(pieces) == need
        # Each piece sits inside some idle interval.
        for p in pieces:
            assert any(i.contains(p) for i in idles)
        assert disjoint(pieces)
    else:
        assert pieces is None
