"""Unit tests for the migrative global-EDF baseline."""

import pytest

from repro.scheduling.edf import edf_feasible
from repro.scheduling.global_edf import (
    MigratorySchedule,
    global_edf_accept_max_subset,
    global_edf_schedule,
    verify_migratory,
)
from repro.scheduling.job import make_jobs
from repro.scheduling.segment import Segment
from repro.instances.workloads import mixed_server_workload


class TestSimulation:
    def test_single_machine_matches_edf_feasibility(self):
        for jobs in [
            make_jobs([(0, 12, 5), (1, 7, 4), (3, 9, 3)]),
            make_jobs([(0, 4, 4), (0, 4, 4)]),
            make_jobs([(0, 20, 10), (2, 5, 3)]),
        ]:
            _, ok = global_edf_schedule(jobs, 1)
            assert ok == edf_feasible(jobs)

    def test_two_machines_run_conflicting_pair(self):
        jobs = make_jobs([(0, 4, 4, 1.0), (0, 4, 4, 1.0)])
        s, ok = global_edf_schedule(jobs, 2)
        assert ok
        verify_migratory(s).assert_ok()
        assert s.value == pytest.approx(2.0)

    def test_empty(self):
        s, ok = global_edf_schedule(make_jobs([]), 2)
        assert ok and s.value == 0

    def test_machine_count_validated(self):
        with pytest.raises(ValueError):
            global_edf_schedule(make_jobs([(0, 4, 2)]), 0)

    def test_migration_happens_and_is_counted(self):
        # Job 0 starts on m0; jobs 1 and 2 (tighter) claim both machines;
        # job 0 resumes wherever free — possibly migrating.
        jobs = make_jobs([(0, 20, 10, 1.0), (2, 6, 4, 1.0), (3, 8, 4, 1.0)])
        s, ok = global_edf_schedule(jobs, 2)
        assert ok
        verify_migratory(s).assert_ok()
        assert s.value == pytest.approx(3.0)
        assert s.total_migrations >= 0  # counted without error

    def test_sticky_assignment_limits_migrations(self):
        # A lone job on two machines must never migrate.
        jobs = make_jobs([(0, 10, 6)])
        s, ok = global_edf_schedule(jobs, 2)
        assert ok
        assert s.migrations(0) == 0

    def test_more_machines_never_hurt(self):
        jobs = mixed_server_workload(20, seed=0)
        ok_counts = []
        for m in (1, 2, 4):
            _, ok = global_edf_schedule(jobs, m)
            ok_counts.append(ok)
        # Feasibility is monotone in machines for global EDF on these inputs.
        if ok_counts[0]:
            assert all(ok_counts)


class TestVerifier:
    def test_catches_machine_overlap(self):
        jobs = make_jobs([(0, 8, 4), (0, 8, 4)])
        s = MigratorySchedule(
            jobs, 1,
            {0: [(0, Segment(0, 4))], 1: [(0, Segment(2, 6))]},
        )
        rep = verify_migratory(s)
        assert not rep.feasible
        assert any("overlap" in v for v in rep.violations)

    def test_catches_self_parallelism(self):
        jobs = make_jobs([(0, 8, 4)])
        s = MigratorySchedule(
            jobs, 2,
            {0: [(0, Segment(0, 2)), (1, Segment(1, 3))]},
        )
        rep = verify_migratory(s)
        assert not rep.feasible
        assert any("two machines at once" in v for v in rep.violations)

    def test_catches_volume_mismatch(self):
        jobs = make_jobs([(0, 8, 4)])
        s = MigratorySchedule(jobs, 1, {0: [(0, Segment(0, 3))]})
        assert not verify_migratory(s).feasible

    def test_catches_bad_machine_id(self):
        jobs = make_jobs([(0, 8, 4)])
        s = MigratorySchedule(jobs, 1, {0: [(5, Segment(0, 4))]})
        assert not verify_migratory(s).feasible


class TestGreedyAdmission:
    def test_output_verifies(self):
        jobs = mixed_server_workload(25, seed=1)
        s = global_edf_accept_max_subset(jobs, 2)
        verify_migratory(s).assert_ok()

    def test_migration_beats_one_machine_on_overload(self):
        jobs = make_jobs([(0, 4, 4, 3.0), (0, 4, 4, 2.0), (0, 8, 4, 1.0)])
        s1 = global_edf_accept_max_subset(jobs, 1)
        s2 = global_edf_accept_max_subset(jobs, 2)
        assert s2.value >= s1.value

    def test_value_order(self):
        jobs = mixed_server_workload(15, seed=2)
        s = global_edf_accept_max_subset(jobs, 2, order="value")
        verify_migratory(s).assert_ok()

    def test_unknown_order(self):
        with pytest.raises(ValueError):
            global_edf_accept_max_subset(make_jobs([(0, 4, 2)]), 1, order="x")
