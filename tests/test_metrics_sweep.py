"""Unit tests for analysis metrics and the sweep harness."""

import numpy as np
import pytest

from repro.analysis.metrics import (
    geometric_decay_rate,
    loss_factor,
    realized_price,
    series_slope_vs_log,
)
from repro.analysis.sweep import Sweep, run_sweep


class TestMetrics:
    def test_loss_factor(self):
        assert loss_factor(10, 4) == pytest.approx(2.5)

    def test_loss_factor_zero_denominator(self):
        assert loss_factor(10, 0) == float("inf")

    def test_realized_price(self):
        assert realized_price(12, 3) == pytest.approx(4.0)

    def test_slope_fit_exact_line(self):
        xs = [1.0, 2.0, 3.0, 4.0]
        ys = [2.5 * x + 1.0 for x in xs]
        slope, intercept = series_slope_vs_log(xs, ys)
        assert slope == pytest.approx(2.5)
        assert intercept == pytest.approx(1.0)

    def test_slope_fit_validation(self):
        with pytest.raises(ValueError):
            series_slope_vs_log([1.0], [2.0])
        with pytest.raises(ValueError):
            series_slope_vs_log([1.0, 2.0], [1.0])

    def test_geometric_decay(self):
        assert geometric_decay_rate([27, 9, 3, 1]) == pytest.approx(3.0)

    def test_geometric_decay_short_series(self):
        assert np.isnan(geometric_decay_rate([5]))


class TestSweep:
    def test_cells_cartesian_product(self):
        sweep = Sweep(axes={"a": [1, 2], "b": ["x", "y", "z"]})
        cells = sweep.cells()
        assert len(cells) == 6
        assert {"a": 2, "b": "y"} in cells

    def test_run_sweep_aggregates(self):
        sweep = Sweep(axes={"n": [2, 4]}, repeats=3)

        def cell(rng, n):
            return {"metric": n * 10 + rng.random()}

        results = run_sweep(sweep, cell, seed=0)
        assert len(results) == 2
        for res in results:
            n = res.params["n"]
            assert n * 10 <= res.metrics["metric"] <= n * 10 + 1
            assert res.metrics["metric_max"] >= res.metrics["metric"]

    def test_run_sweep_deterministic(self):
        sweep = Sweep(axes={"n": [3]}, repeats=2)

        def cell(rng, n):
            return {"m": rng.random()}

        a = run_sweep(sweep, cell, seed=123)
        b = run_sweep(sweep, cell, seed=123)
        assert a[0].metrics == b[0].metrics

    def test_independent_streams_per_cell(self):
        sweep = Sweep(axes={"n": [1, 2]})

        def cell(rng, n):
            return {"m": rng.random()}

        results = run_sweep(sweep, cell, seed=9)
        assert results[0].metrics["m"] != results[1].metrics["m"]
