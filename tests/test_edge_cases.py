"""Edge cases cutting across modules: boundary laxities, exact/float mixing,
degenerate windows, mass ties, and extreme value ranges.

Each test here pins a behaviour that once could plausibly regress without
any mainline test noticing.
"""

from fractions import Fraction

import pytest

from repro.core.bas.contraction import levelled_contraction
from repro.core.bas.forest import Forest
from repro.core.bas.tm import tm_optimal_bas
from repro.core.combined import schedule_k_bounded
from repro.core.lsa import lsa
from repro.core.nonpreemptive import nonpreemptive_combined
from repro.core.reduction import reduce_schedule_to_k_preemptive, schedule_to_forest
from repro.scheduling.edf import edf_feasible, edf_schedule
from repro.scheduling.job import Job, JobSet, make_jobs
from repro.scheduling.schedule import Schedule
from repro.scheduling.segment import Segment
from repro.scheduling.verify import verify_schedule


class TestZeroLaxity:
    """Jobs with window == length: one valid placement, no preemption room."""

    def test_single_tight_job(self):
        jobs = make_jobs([(0, 4, 4)])
        res = edf_schedule(jobs)
        assert res.feasible
        assert res.schedule[0] == (Segment(0, 4),)

    def test_tight_chain_tiles_exactly(self):
        jobs = make_jobs([(0, 3, 3), (3, 7, 4), (7, 9, 2)])
        res = edf_schedule(jobs)
        assert res.feasible
        assert res.schedule.busy_segments() == [Segment(0, 9)]

    def test_tight_overlap_infeasible(self):
        jobs = make_jobs([(0, 4, 4), (3, 7, 4)])
        assert not edf_feasible(jobs)

    def test_pipeline_handles_all_tight(self):
        jobs = make_jobs([(0, 3, 3), (3, 7, 4), (7, 9, 2)])
        s = schedule_k_bounded(jobs, 1)
        verify_schedule(s, k=1).assert_ok()
        assert s.value == 3.0  # all three kept: no nesting, no loss


class TestMassTies:
    """Many identical jobs: tie-breaking must stay deterministic and fair."""

    def test_identical_jobs_fill_capacity(self):
        jobs = make_jobs([(0, 10, 2) for _ in range(5)])
        res = edf_schedule(jobs)
        assert res.feasible
        assert res.schedule.busy_segments() == [Segment(0, 10)]

    def test_excess_identical_jobs_drop_deterministically(self):
        jobs = make_jobs([(0, 10, 2, 1.0) for _ in range(8)])
        from repro.scheduling.edf import edf_accept_max_subset

        a = edf_accept_max_subset(jobs)
        b = edf_accept_max_subset(jobs)
        assert a.scheduled_ids == b.scheduled_ids
        assert len(a) == 5

    def test_lsa_deterministic_under_ties(self):
        jobs = make_jobs([(0, 12, 3, 2.0) for _ in range(6)])
        a = lsa(jobs, k=1, enforce_laxity=False)
        b = lsa(jobs, k=1, enforce_laxity=False)
        assert a.scheduled_ids == b.scheduled_ids


class TestExactFloatMixing:
    def test_fraction_and_int_jobs_coexist(self):
        jobs = JobSet(
            [
                Job(0, Fraction(0), Fraction(9, 2), Fraction(3, 2)),
                Job(1, 1, 4, 2),
            ]
        )
        res = edf_schedule(jobs)
        assert res.feasible
        verify_schedule(res.schedule).assert_ok()

    def test_float_jobs_with_roundoff_windows(self):
        # 0.1+0.2 style coordinates must not produce spurious violations.
        jobs = make_jobs([(0.1 + 0.2, 1.3, 1.0)])
        res = edf_schedule(jobs)
        assert res.feasible
        verify_schedule(res.schedule).assert_ok()

    def test_exact_zero_slack_rejected_by_epsilon(self):
        jobs = JobSet(
            [
                Job(0, Fraction(0), Fraction(2), Fraction(1)),
                Job(1, Fraction(0), Fraction(2), Fraction(1) + Fraction(1, 10**12)),
            ]
        )
        assert not edf_feasible(jobs)


class TestExtremeValues:
    def test_huge_value_range(self):
        jobs = make_jobs([(0, 4, 4, 1e-6), (0, 4, 4, 1e9)])
        from repro.scheduling.exact import opt_infty_exact

        s = opt_infty_exact(jobs)
        assert s.scheduled_ids == [1]

    def test_k0_picks_giant(self):
        jobs = make_jobs([(0, 4, 4, 1e9), (0, 12, 2, 1.0), (4, 16, 2, 1.0)])
        s = nonpreemptive_combined(jobs)
        assert s.value >= 1e9

    def test_tiny_lengths(self):
        jobs = make_jobs([(0, 1, 2**-20), (0, 1, 2**-20)])
        res = edf_schedule(jobs)
        assert res.feasible


class TestDegenerateForests:
    def test_tm_on_single_node(self):
        f = Forest([-1], [3])
        assert tm_optimal_bas(f, 1).value == 3

    def test_contraction_on_all_roots(self):
        f = Forest([-1, -1, -1], [1, 2, 3])
        trace = levelled_contraction(f, 1)
        assert trace.num_iterations == 1
        assert trace.best_subforest().value == 6

    def test_tm_value_ties_resolve_to_lower_ids(self):
        # Valuable root retained with k=1 and two identical children: the
        # top-k selection must break the tie toward the smaller id.
        f = Forest([-1, 0, 0], [100, 5, 5])
        bas = tm_optimal_bas(f, 1)
        assert 0 in bas.retained
        assert 1 in bas.retained and 2 not in bas.retained

    def test_deep_star_chain(self):
        # Alternating stars along a path exercise both DP branches.
        parents = [-1]
        for level in range(6):
            spine = len(parents) - 1 if level == 0 else spine_next
            for _ in range(3):
                parents.append(spine)
            spine_next = len(parents) - 1
        f = Forest(parents, [1.0] * len(parents))
        for k in (1, 2):
            bas = tm_optimal_bas(f, k)
            from repro.core.bas.verify import verify_bas

            verify_bas(bas, k).assert_ok()


class TestReductionCorners:
    def test_single_job_schedule_forest(self):
        jobs = make_jobs([(0, 10, 4)])
        sched = edf_schedule(jobs).schedule
        forest, node_to_job = schedule_to_forest(sched)
        assert forest.n == 1 and node_to_job == [0]

    def test_back_to_back_jobs_all_roots(self):
        jobs = make_jobs([(0, 3, 3), (3, 6, 3), (6, 9, 3)])
        sched = edf_schedule(jobs).schedule
        forest, _ = schedule_to_forest(sched)
        assert len(forest.roots) == 3

    def test_reduction_idempotent_on_k_bounded_input(self):
        jobs = make_jobs([(0, 20, 10), (2, 5, 3)])
        sched = edf_schedule(jobs).schedule  # already 1-bounded
        once = reduce_schedule_to_k_preemptive(sched, 1)
        twice = reduce_schedule_to_k_preemptive(once, 1)
        assert twice.value == once.value

    def test_idle_gaps_between_trees_survive_compaction(self):
        jobs = make_jobs([(0, 4, 2), (10, 14, 2)])
        sched = edf_schedule(jobs).schedule
        out = reduce_schedule_to_k_preemptive(sched, 1)
        verify_schedule(out, k=1).assert_ok()
        # The second job cannot start before its release at 10.
        assert out[1][0].start == 10


class TestScheduleCorners:
    def test_schedule_with_fraction_segments_renders_value(self):
        jobs = JobSet([Job(0, Fraction(0), Fraction(3), Fraction(2), Fraction(5, 2))])
        s = Schedule(jobs, {0: [Segment(Fraction(0), Fraction(2))]})
        assert s.value == Fraction(5, 2)

    def test_idle_segments_outside_busy_range(self):
        jobs = make_jobs([(5, 9, 2)])
        s = edf_schedule(jobs).schedule
        idles = s.idle_segments(0, 12)
        assert idles == [Segment(0, 5), Segment(7, 12)]
