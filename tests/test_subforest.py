"""Unit tests for the SubForest result object."""

import pytest

from repro.core.bas.forest import Forest
from repro.core.bas.subforest import SubForest


@pytest.fixture
def tree():
    #        0
    #      /   \
    #     1     2
    #    / \   / \
    #   3   4 5   6
    return Forest([-1, 0, 0, 1, 1, 2, 2], [8, 4, 4, 1, 2, 3, 1])


class TestBasics:
    def test_value(self, tree):
        sub = SubForest(tree, [0, 1, 4])
        assert sub.value == 14

    def test_len_contains(self, tree):
        sub = SubForest(tree, [2, 5])
        assert len(sub) == 2
        assert 5 in sub and 0 not in sub

    def test_out_of_range_rejected(self, tree):
        with pytest.raises(ValueError):
            SubForest(tree, [99])

    def test_loss_factor(self, tree):
        sub = SubForest(tree, [0, 1, 2])  # value 16 of 23
        assert sub.loss_factor() == pytest.approx(23 / 16)

    def test_loss_factor_empty(self, tree):
        assert SubForest(tree, []).loss_factor() == float("inf")


class TestInducedStructure:
    def test_induced_children(self, tree):
        sub = SubForest(tree, [0, 1, 4, 6])
        assert sub.induced_children(0) == [1]
        assert sub.induced_children(1) == [4]

    def test_induced_children_requires_membership(self, tree):
        sub = SubForest(tree, [0])
        with pytest.raises(KeyError):
            sub.induced_children(1)

    def test_induced_degree(self, tree):
        sub = SubForest(tree, [0, 1, 2])
        assert sub.induced_degree(0) == 2
        assert sub.induced_degree(1) == 0

    def test_max_induced_degree(self, tree):
        sub = SubForest(tree, [0, 1, 2])
        assert sub.max_induced_degree() == 2
        assert SubForest(tree, []).max_induced_degree() == 0


class TestComponents:
    def test_single_component(self, tree):
        sub = SubForest(tree, [0, 1, 3])
        assert sub.component_roots() == [0]
        assert sub.components() == [[0, 1, 3]]

    def test_sibling_components(self, tree):
        # Root removed: the two subtrees are independent components.
        sub = SubForest(tree, [1, 3, 4, 2, 5])
        assert sub.component_roots() == [1, 2]
        comps = sub.components()
        assert [1, 3, 4] in comps and [2, 5] in comps

    def test_leaf_only_components(self, tree):
        sub = SubForest(tree, [3, 5])
        assert sub.component_roots() == [3, 5]
        assert sub.components() == [[3], [5]]
