"""Unit tests for the Forest data structure."""

import pytest

from repro.core.bas.forest import Forest


@pytest.fixture
def small_tree():
    #        0
    #      / | \
    #     1  2  3
    #    / \     \
    #   4   5     6
    return Forest([-1, 0, 0, 0, 1, 1, 3], [10, 5, 3, 4, 2, 1, 6])


class TestConstruction:
    def test_basic_shape(self, small_tree):
        assert small_tree.n == 7
        assert small_tree.roots == (0,)
        assert small_tree.children(0) == (1, 2, 3)
        assert small_tree.parent(4) == 1
        assert small_tree.degree(0) == 3

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="mismatch"):
            Forest([-1, 0], [1])

    def test_self_parent_rejected(self):
        with pytest.raises(ValueError, match="own parent"):
            Forest([0], [1])

    def test_invalid_parent_index(self):
        with pytest.raises(ValueError, match="invalid parent"):
            Forest([-1, 7], [1, 1])

    def test_cycle_rejected(self):
        with pytest.raises(ValueError, match="cycle"):
            Forest([1, 0], [1, 1])

    def test_nonpositive_value_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            Forest([-1], [0])

    def test_multi_root_forest(self):
        f = Forest([-1, -1, 0], [1, 2, 3])
        assert f.roots == (0, 1)

    def test_empty_forest(self):
        f = Forest([], [])
        assert f.n == 0 and f.roots == ()


class TestQueries:
    def test_total_value(self, small_tree):
        assert small_tree.total_value == 31

    def test_is_leaf(self, small_tree):
        assert small_tree.is_leaf(4)
        assert not small_tree.is_leaf(1)

    def test_leaves(self, small_tree):
        assert small_tree.leaves == [2, 4, 5, 6]

    def test_max_degree(self, small_tree):
        assert small_tree.max_degree == 3

    def test_subtree_nodes(self, small_tree):
        assert sorted(small_tree.subtree_nodes(1)) == [1, 4, 5]

    def test_subtree_value(self, small_tree):
        assert small_tree.subtree_value(1) == 8
        assert small_tree.subtree_value(0) == 31

    def test_is_ancestor(self, small_tree):
        assert small_tree.is_ancestor(0, 4)
        assert small_tree.is_ancestor(1, 5)
        assert not small_tree.is_ancestor(4, 1)
        assert not small_tree.is_ancestor(2, 6)
        assert not small_tree.is_ancestor(0, 0)  # strict

    def test_ancestors(self, small_tree):
        assert small_tree.ancestors(4) == [1, 0]
        assert small_tree.ancestors(0) == []


class TestTraversals:
    def test_topological_parents_first(self, small_tree):
        order = small_tree.topological_order()
        pos = {v: i for i, v in enumerate(order)}
        for v in range(small_tree.n):
            p = small_tree.parent(v)
            if p != -1:
                assert pos[p] < pos[v]
        assert sorted(order) == list(range(7))

    def test_postorder_children_first(self, small_tree):
        order = small_tree.postorder()
        pos = {v: i for i, v in enumerate(order)}
        for v in range(small_tree.n):
            p = small_tree.parent(v)
            if p != -1:
                assert pos[v] < pos[p]

    def test_depths(self, small_tree):
        assert small_tree.depths() == [0, 1, 1, 1, 2, 2, 2]

    def test_deep_tree_no_recursion_error(self):
        n = 50_000
        f = Forest.path(n)
        assert f.depths()[-1] == n - 1
        assert len(f.postorder()) == n


class TestBuilders:
    def test_path(self):
        f = Forest.path(4)
        assert f.children(0) == (1,)
        assert f.max_degree == 1

    def test_star(self):
        f = Forest.star(5)
        assert f.degree(0) == 4
        assert f.leaves == [1, 2, 3, 4]

    def test_complete(self):
        f = Forest.complete(2, 3)
        assert f.n == 15
        assert all(f.degree(v) in (0, 2) for v in range(f.n))

    def test_complete_depth_zero(self):
        assert Forest.complete(3, 0).n == 1

    def test_complete_invalid(self):
        with pytest.raises(ValueError):
            Forest.complete(0, 2)

    def test_from_edges(self):
        f = Forest.from_edges(3, [(0, 1), (1, 2)], [1, 1, 1])
        assert f.parent(2) == 1

    def test_from_edges_two_parents(self):
        with pytest.raises(ValueError, match="two parents"):
            Forest.from_edges(3, [(0, 2), (1, 2)], [1, 1, 1])


class TestRelabeled:
    def test_induced_subforest(self, small_tree):
        sub, mapping = small_tree.relabeled([1, 4, 5])
        assert sub.n == 3
        root = mapping[1]
        assert sub.parent(root) == -1
        assert sorted(sub.children(root)) == sorted([mapping[4], mapping[5]])

    def test_disconnected_keep(self, small_tree):
        sub, mapping = small_tree.relabeled([4, 6])
        assert sub.roots == (mapping[4], mapping[6]) or set(sub.roots) == {
            mapping[4],
            mapping[6],
        }

    def test_values_carried(self, small_tree):
        sub, mapping = small_tree.relabeled([0, 3])
        assert sub.value(mapping[3]) == 4
