"""Unit tests for the Section 4.1 reduction (schedule ⇄ forest)."""

import pytest

from repro.core.bas.subforest import SubForest
from repro.core.bas.tm import tm_optimal_bas
from repro.core.reduction import (
    forest_to_schedule,
    reduce_schedule_to_k_preemptive,
    schedule_to_forest,
)
from repro.instances.random_jobs import laminar_job_chain
from repro.scheduling.edf import edf_schedule
from repro.scheduling.job import make_jobs
from repro.scheduling.schedule import Schedule
from repro.scheduling.segment import Segment
from repro.scheduling.verify import verify_schedule
from repro.utils.numeric import log_base


@pytest.fixture
def nested_schedule():
    """Job 1 preempts job 0; job 2 preempts job 1 (a path forest)."""
    jobs = make_jobs([(0, 12, 6, 3.0), (1, 9, 3, 2.0), (2, 5, 1, 1.0)])
    sched = Schedule(
        jobs,
        {
            0: [Segment(0, 1), Segment(7, 12)],
            1: [Segment(1, 2), Segment(5, 7)],
            2: [Segment(2, 3)],
        },
    )
    verify_schedule(sched).assert_ok()
    return sched


class TestScheduleToForest:
    def test_path_structure(self, nested_schedule):
        forest, node_to_job = schedule_to_forest(nested_schedule)
        assert forest.n == 3
        # Hulls: job0 [0,12] ⊃ job1 [1,7] ⊃ job2 [2,3].
        by_job = {node_to_job[v]: v for v in range(3)}
        assert forest.parent(by_job[0]) == -1
        assert forest.parent(by_job[1]) == by_job[0]
        assert forest.parent(by_job[2]) == by_job[1]

    def test_values_carried(self, nested_schedule):
        forest, node_to_job = schedule_to_forest(nested_schedule)
        for v in range(forest.n):
            assert forest.value(v) == nested_schedule.jobs[node_to_job[v]].value

    def test_sequential_jobs_are_siblings(self):
        jobs = make_jobs([(0, 4, 2), (4, 8, 2)])
        sched = edf_schedule(jobs).schedule
        forest, _ = schedule_to_forest(sched)
        assert len(forest.roots) == 2

    def test_two_children_same_gap(self):
        # Jobs 1 and 2 run back-to-back inside job 0's single gap: both are
        # children of 0 (the "string of successive jobs" remark).
        jobs = make_jobs([(0, 10, 4), (1, 4, 2), (3, 6, 2)])
        sched = Schedule(
            jobs,
            {
                0: [Segment(0, 1), Segment(5, 8)],
                1: [Segment(1, 3)],
                2: [Segment(3, 5)],
            },
        )
        verify_schedule(sched).assert_ok()
        forest, node_to_job = schedule_to_forest(sched)
        by_job = {node_to_job[v]: v for v in range(3)}
        assert forest.children(by_job[0]) == (by_job[1], by_job[2])

    def test_rejects_non_laminar(self):
        jobs = make_jobs([(0, 10, 4), (0, 10, 4)])
        sched = Schedule(
            jobs,
            {
                0: [Segment(0, 2), Segment(4, 6)],
                1: [Segment(2, 4), Segment(6, 8)],
            },
        )
        with pytest.raises(ValueError, match="laminar"):
            schedule_to_forest(sched)

    def test_known_chain_forest(self):
        jobs = laminar_job_chain(2, 3)
        sched = edf_schedule(jobs).schedule
        forest, _ = schedule_to_forest(sched)
        assert forest.n == 13
        assert forest.max_degree == 3
        depth_counts = {}
        for d in forest.depths():
            depth_counts[d] = depth_counts.get(d, 0) + 1
        assert depth_counts == {0: 1, 1: 3, 2: 9}


class TestForestToSchedule:
    def test_full_retention_identity_value(self, nested_schedule):
        forest, node_to_job = schedule_to_forest(nested_schedule)
        bas = SubForest(forest, range(forest.n))
        out = forest_to_schedule(nested_schedule, node_to_job, bas)
        verify_schedule(out).assert_ok()
        assert out.value == nested_schedule.value

    def test_drop_middle_merges_outer(self, nested_schedule):
        forest, node_to_job = schedule_to_forest(nested_schedule)
        by_job = {node_to_job[v]: v for v in range(3)}
        # Retain only job 0: its segments compact into one block.
        bas = SubForest(forest, [by_job[0]])
        out = forest_to_schedule(nested_schedule, node_to_job, bas)
        verify_schedule(out, k=0).assert_ok()
        assert out[0] == (Segment(0, 6),)

    def test_left_merge_respects_release(self):
        # Child has a tight release: compaction cannot pull it earlier.
        jobs = make_jobs([(0, 10, 4), (3, 6, 2), (1, 3, 1)])
        sched = Schedule(
            jobs,
            {
                0: [Segment(0, 1), Segment(2, 3), Segment(5, 7)],
                2: [Segment(1, 2)],
                1: [Segment(3, 5)],
            },
        )
        verify_schedule(sched).assert_ok()
        forest, node_to_job = schedule_to_forest(sched)
        by_job = {node_to_job[v]: v for v in range(3)}
        # Drop job 2 (the [1,2] slice); keep 0 and 1.
        bas = SubForest(forest, [by_job[0], by_job[1]])
        out = forest_to_schedule(sched, node_to_job, bas)
        verify_schedule(out).assert_ok()
        assert out[1][0].start >= 3  # release respected
        # Job 0's first two slices merged across the removed hole.
        assert len(out[0]) == 2

    def test_budget_bound_from_bas_degree(self):
        jobs = laminar_job_chain(2, 4)  # degree-4 forest
        sched = edf_schedule(jobs).schedule
        forest, node_to_job = schedule_to_forest(sched)
        for k in (1, 2, 3):
            bas = tm_optimal_bas(forest, k)
            out = forest_to_schedule(sched, node_to_job, bas)
            verify_schedule(out, k=k).assert_ok()


class TestReEdfAblation:
    def test_reedf_preserves_value_but_not_budget(self):
        """The ablation reconstruction keeps the same value as the left-merge
        but holds no segment-budget guarantee — on nested instances it can
        exceed k+1 where compaction cannot."""
        from repro.core.reduction import forest_to_schedule_reedf

        jobs = laminar_job_chain(3, 2)
        sched = edf_schedule(jobs).schedule
        forest, node_to_job = schedule_to_forest(sched)
        for k in (1, 2):
            bas = tm_optimal_bas(forest, k)
            merged = forest_to_schedule(sched, node_to_job, bas)
            reedf = forest_to_schedule_reedf(sched, node_to_job, bas)
            verify_schedule(reedf).assert_ok()  # feasible, but maybe > k+1 segs
            assert reedf.value == pytest.approx(merged.value)
            assert merged.max_preemptions <= k  # the guarantee under test

    def test_reedf_budget_violation_exists(self):
        """A concrete case where re-EDF blows the budget: retain a long job
        and two short late-deadline children in separate gaps; EDF preempts
        the long job for each (2 preemptions) although k = 1 compaction
        keeps it to 2 segments by dropping one gap."""
        from repro.core.reduction import forest_to_schedule_reedf
        from repro.core.bas.subforest import SubForest

        jobs = make_jobs([(0, 40, 20), (4, 10, 3), (24, 30, 3), (14, 18, 2)])
        sched = edf_schedule(jobs).schedule
        assert edf_schedule(jobs).feasible
        forest, node_to_job = schedule_to_forest(sched)
        by_job = {node_to_job[v]: v for v in range(forest.n)}
        # Retain the long job and two of its children — legal only for k>=2,
        # but feed it to the k=1 reconstruction paths to expose the gap.
        bas = SubForest(forest, [by_job[0], by_job[1], by_job[2]])
        reedf = forest_to_schedule_reedf(sched, node_to_job, bas)
        merged = forest_to_schedule(sched, node_to_job, bas)
        # Both reconstructions yield 2 preemptions here (the BAS has degree
        # 2); the *k-BAS choice* is what enforces the budget — with TM at
        # k=1 the compaction result obeys it while re-EDF re-creates every
        # original preemption of the retained set.
        bas1 = tm_optimal_bas(forest, 1)
        merged1 = forest_to_schedule(sched, node_to_job, bas1)
        assert merged1.max_preemptions <= 1
        assert reedf.value == pytest.approx(merged.value)


class TestFullReduction:
    def test_value_guarantee_theorem_4_2(self):
        for depth, branching in [(2, 2), (3, 2), (2, 3)]:
            jobs = laminar_job_chain(depth, branching)
            sched = edf_schedule(jobs).schedule
            for k in (1, 2):
                out = reduce_schedule_to_k_preemptive(sched, k)
                verify_schedule(out, k=k).assert_ok()
                assert out.value >= sched.value / log_base(jobs.n, k + 1) - 1e-9

    def test_laminarizes_automatically(self):
        jobs = make_jobs([(0, 10, 4, 2.0), (0, 10, 4, 3.0)])
        sched = Schedule(
            jobs,
            {
                0: [Segment(0, 2), Segment(4, 6)],
                1: [Segment(2, 4), Segment(6, 8)],
            },
        )
        out = reduce_schedule_to_k_preemptive(sched, 1)
        verify_schedule(out, k=1).assert_ok()
        assert out.value > 0

    def test_contraction_algorithm_variant(self):
        jobs = laminar_job_chain(3, 2)
        sched = edf_schedule(jobs).schedule
        tm_out = reduce_schedule_to_k_preemptive(sched, 1, algorithm="tm")
        lc_out = reduce_schedule_to_k_preemptive(sched, 1, algorithm="contraction")
        verify_schedule(lc_out, k=1).assert_ok()
        assert tm_out.value >= lc_out.value - 1e-9

    def test_unknown_algorithm(self, nested_schedule):
        with pytest.raises(ValueError, match="unknown algorithm"):
            reduce_schedule_to_k_preemptive(nested_schedule, 1, algorithm="x")

    def test_k0_rejected(self, nested_schedule):
        with pytest.raises(ValueError, match="k >= 1"):
            reduce_schedule_to_k_preemptive(nested_schedule, 0)

    def test_empty_schedule_passthrough(self):
        jobs = make_jobs([(0, 5, 2)])
        empty = Schedule(jobs, {})
        assert len(reduce_schedule_to_k_preemptive(empty, 1)) == 0
