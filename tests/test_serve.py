"""The batch solver service (repro.serve), end to end.

The tentpole proof is the stress test: 16 client threads fire 200 requests
each over a 20-instance corpus through one shared service, and afterwards
the test asserts the service's whole contract at once — no deadlock, a
cache-hit ratio above 0.8, at least one coalesced request, every distinct
answer certificate-verified, and agreement with the direct facade solve.
The rest of the file pins the pieces the stress test composes: canonical
keys, the LRU cache, coalescing determinism (gated solve), retry and
deadline-degradation semantics.
"""

import threading
import time
from concurrent.futures import wait
from fractions import Fraction
from random import Random

import pytest

from repro.api import request_key, solve_k_bounded
from repro.instances import random_integral_jobs, random_jobs
from repro.scheduling.job import Job, JobSet
from repro.scheduling.verify import verify_schedule
from repro.serve import LruCache, ServiceClosed, SolverService


# ---------------------------------------------------------------------------
# canonical keys
# ---------------------------------------------------------------------------


class TestCanonicalKey:
    def test_order_independent(self):
        a = JobSet([Job(0, 0, 10, 3), Job(1, 1, 6, 2), Job(2, 2, 9, 4)])
        b = JobSet([Job(2, 2, 9, 4), Job(0, 0, 10, 3), Job(1, 1, 6, 2)])
        assert a.canonical_key() == b.canonical_key()

    def test_numeric_type_normalized(self):
        a = JobSet([Job(0, 0, 10, 3), Job(1, 1, 6, 2)])
        b = JobSet([Job(0, 0.0, Fraction(10), 3.0), Job(1, Fraction(1), 6, 2.0)])
        assert a.canonical_key() == b.canonical_key()

    def test_exact_fractions_distinguished(self):
        # 1/3 is not representable as a float; the exact instance must not
        # collide with its float approximation.
        a = JobSet([Job(0, 0, 10, Fraction(10, 3))])
        b = JobSet([Job(0, 0, 10, 10 / 3)])
        assert a.canonical_key() != b.canonical_key()

    def test_ids_participate(self):
        a = JobSet([Job(0, 0, 10, 3)])
        b = JobSet([Job(7, 0, 10, 3)])
        assert a.canonical_key() != b.canonical_key()

    @pytest.mark.parametrize("field", ["release", "deadline", "length", "value"])
    def test_every_coordinate_matters(self, field):
        base = dict(id=0, release=2, deadline=20, length=4, value=5)
        a = JobSet([Job(**base)])
        bumped = dict(base)
        bumped[field] += 1
        b = JobSet([Job(**bumped)])
        assert a.canonical_key() != b.canonical_key()

    def test_no_collisions_over_seeded_corpus(self):
        """A few hundred structurally nearby instances must all hash apart."""
        rng = Random(2018)
        keys = {}
        for i in range(300):
            n = rng.randint(1, 8)
            jobs = []
            for j in range(n):
                r = rng.randint(0, 12)
                p = rng.randint(1, 6)
                slack = rng.randint(0, 6)
                v = rng.choice([1, 2, 3, Fraction(1, 2), 1.5])
                jobs.append(Job(j, r, r + p + slack, p, v))
            js = JobSet(jobs)
            key = js.canonical_key()
            if key in keys:
                assert keys[key].canonical_key() == js.canonical_key()
                # Same key must mean the same canonical multiset: re-check
                # via the sorted exact serialisation both sides hash.
                same = sorted(
                    (Fraction(a.release), Fraction(a.deadline), Fraction(a.length), Fraction(a.value), a.id)
                    for a in keys[key]
                ) == sorted(
                    (Fraction(a.release), Fraction(a.deadline), Fraction(a.length), Fraction(a.value), a.id)
                    for a in js
                )
                assert same, f"collision between distinct instances at case {i}"
            keys[key] = js

    def test_request_key_separates_parameters(self):
        jobs = JobSet([Job(0, 0, 10, 3)])
        keys = {
            request_key(jobs, 1),
            request_key(jobs, 2),
            request_key(jobs, 1, machines=2),
            request_key(jobs, 1, method="lsa"),
        }
        assert len(keys) == 4

    def test_request_key_rejects_unknown_method(self):
        jobs = JobSet([Job(0, 0, 10, 3)])
        with pytest.raises(ValueError):
            request_key(jobs, 1, method="nope")


# ---------------------------------------------------------------------------
# the LRU cache
# ---------------------------------------------------------------------------


class TestLruCache:
    def test_capacity_enforced_lru_order(self):
        cache = LruCache(2)
        assert cache.put("a", 1) == 0
        assert cache.put("b", 2) == 0
        assert cache.get("a") == 1  # refreshes a; b is now the LRU entry
        assert cache.put("c", 3) == 1
        assert "b" not in cache
        assert cache.get("a") == 1 and cache.get("c") == 3

    def test_overwrite_does_not_evict(self):
        cache = LruCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.put("a", 10) == 0
        assert cache.get("a") == 10 and cache.get("b") == 2

    def test_miss_is_none(self):
        assert LruCache(1).get("missing") is None

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            LruCache(0)


# ---------------------------------------------------------------------------
# service semantics (deterministic, single-threaded where possible)
# ---------------------------------------------------------------------------


def _corpus(count: int, n: int = 10, seed: int = 7):
    return [(random_jobs(n, seed=seed + i), 1 + i % 2) for i in range(count)]


class TestServiceSemantics:
    def test_hit_equals_direct_solve(self):
        jobs, k = _corpus(1)[0]
        direct = solve_k_bounded(jobs, k)
        with SolverService(workers=2) as svc:
            cold = svc.solve(jobs, k)
            hit = svc.solve(jobs, k)
        assert cold.value == hit.value == direct.value
        assert cold.preemptions_used == direct.preemptions_used
        assert not cold.degraded and not hit.degraded
        assert hit.metrics["served.hit"] == 1.0
        assert "served.hit" not in cold.metrics

    def test_permuted_instance_hits_cache(self):
        jobs, k = _corpus(1)[0]
        permuted = JobSet(reversed(list(jobs)))
        with SolverService(workers=1) as svc:
            svc.solve(jobs, k)
            again = svc.solve(permuted, k)
            stats = svc.stats()
        assert again.metrics["served.hit"] == 1.0
        assert stats["hits"] == 1 and stats["misses"] == 1

    def test_frontier_size_reduction_request_is_cacheable(self):
        """An n = 28 ``method="reduction"`` request is served cold by the
        bitset ``OPT_∞`` core and then answered from cache, identically.

        Before the bitset rewrite n = 28 sat beyond every exact guard, so
        requests this size silently reduced from a *greedy* ∞-preemptive
        schedule; now the cold solve's metrics carry the exact solver's
        node counter, proving the branch-and-bound ran inside the worker.
        """
        from repro.api import SolveRequest
        from repro.scheduling.exact import clear_exact_caches

        clear_exact_caches()
        jobs = random_integral_jobs(28, seed=828)
        req = SolveRequest(jobs=jobs, k=2, method="reduction")
        with SolverService(workers=1) as svc:
            cold = svc.solve(req)
            hit = svc.solve(req)
            stats = svc.stats()
        assert cold.method == hit.method == "reduction"
        assert cold.value == hit.value > 0
        assert hit.metrics["served.hit"] == 1.0
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert cold.metrics.get("exact.nodes", 0) > 0, (
            "the exact bitset core never ran — the n = 28 request fell "
            "back to greedy admission"
        )
        verify_schedule(cold.schedule).assert_ok()

    def test_coalescing_shares_one_inflight_solve(self):
        """Duplicates submitted while the leader is gated all share its future
        and the underlying solver runs exactly once."""
        jobs, k = _corpus(1)[0]
        gate = threading.Event()
        calls = []

        def gated(jobs_, k_, *, machines=1, method="auto", **kw):
            calls.append(method)
            assert gate.wait(timeout=30), "gate never opened"
            return solve_k_bounded(jobs_, k_, machines=machines, method=method, **kw)

        with SolverService(workers=2, solve_fn=gated) as svc:
            futs = [svc.submit(jobs, k) for _ in range(6)]
            assert len({id(f) for f in futs}) == 1
            assert svc.stats()["coalesced"] == 5
            gate.set()
            done, not_done = wait(futs, timeout=30)
            assert not not_done
        assert len(calls) == 1
        values = {f.result().value for f in futs}
        assert values == {solve_k_bounded(jobs, k).value}

    def test_submission_after_completion_is_a_hit_not_coalesced(self):
        jobs, k = _corpus(1)[0]
        with SolverService(workers=1) as svc:
            svc.solve(jobs, k)
            svc.solve(jobs, k)
            stats = svc.stats()
        assert stats["coalesced"] == 0 and stats["hits"] == 1

    def test_retry_once_on_failure(self):
        jobs, k = _corpus(1)[0]
        attempts = []

        def flaky(jobs_, k_, *, machines=1, method="auto", **kw):
            attempts.append(1)
            if len(attempts) == 1:
                raise RuntimeError("transient")
            return solve_k_bounded(jobs_, k_, machines=machines, method=method, **kw)

        with SolverService(workers=1, solve_fn=flaky) as svc:
            result = svc.solve(jobs, k)
            stats = svc.stats()
        assert len(attempts) == 2
        assert result.value == solve_k_bounded(jobs, k).value
        assert result.metrics["served.retries"] == 1.0
        assert stats["retries"] == 1 and stats["errors"] == 0

    def test_persistent_failure_surfaces_after_one_retry(self):
        jobs, k = _corpus(1)[0]
        attempts = []

        def broken(jobs_, k_, *, machines=1, method="auto", **kw):
            attempts.append(1)
            raise RuntimeError("permanent")

        with SolverService(workers=1, solve_fn=broken) as svc:
            fut = svc.submit(jobs, k)
            with pytest.raises(RuntimeError, match="permanent"):
                fut.result(timeout=30)
            stats = svc.stats()
        assert len(attempts) == 2
        assert stats["errors"] == 1
        # A failed request must not poison the cache or the in-flight table.
        assert stats["cache_size"] == 0 and stats["inflight"] == 0

    def test_deadline_degrades_to_lsa(self):
        jobs, k = _corpus(1)[0]

        def slow_full(jobs_, k_, *, machines=1, method="auto", **kw):
            if method != "lsa":
                time.sleep(2.0)
            return solve_k_bounded(jobs_, k_, machines=machines, method=method, **kw)

        with SolverService(workers=1, solve_fn=slow_full) as svc:
            result = svc.solve(jobs, k, deadline_ms=50)
            stats = svc.stats()
        assert result.degraded
        assert result.metrics["served.degraded"] == 1.0
        assert result.metrics["served.timeouts"] == 1.0
        assert stats["degraded"] == 1 and stats["timeouts"] == 1
        # Degraded is still a real, feasible, k-bounded answer.
        verify_schedule(result.schedule, k=k).assert_ok()
        assert result.value <= solve_k_bounded(jobs, k).value

    def test_degraded_result_is_not_cached(self):
        """A deadline-degraded answer must never poison the cache: a later
        no-deadline request for the same key gets a fresh full solve, and
        only that full result is cached."""
        jobs, k = _corpus(1)[0]
        slowed_once = threading.Event()

        def slow_once(jobs_, k_, *, machines=1, method="auto", **kw):
            if method != "lsa" and not slowed_once.is_set():
                slowed_once.set()
                time.sleep(0.5)
            return solve_k_bounded(jobs_, k_, machines=machines, method=method, **kw)

        direct = solve_k_bounded(jobs, k)
        with SolverService(workers=1, solve_fn=slow_once) as svc:
            degraded = svc.solve(jobs, k, deadline_ms=50)
            full = svc.solve(jobs, k)  # must NOT be served the degraded entry
            hit = svc.solve(jobs, k)
            stats = svc.stats()
        assert degraded.degraded
        assert not full.degraded and "served.hit" not in full.metrics
        assert full.value == direct.value
        assert full.preemptions_used == direct.preemptions_used
        assert hit.metrics["served.hit"] == 1.0 and not hit.degraded
        assert stats["misses"] == 2 and stats["hits"] == 1

    def test_no_deadline_request_does_not_coalesce_onto_deadline_leader(self):
        """A request without a deadline must not ride a deadline-bound
        in-flight solve (it could be handed a degraded answer); it starts
        its own full solve and becomes the key's new leader."""
        jobs, k = _corpus(1)[0]
        gate = threading.Event()

        def gated(jobs_, k_, *, machines=1, method="auto", **kw):
            assert gate.wait(timeout=30), "gate never opened"
            return solve_k_bounded(jobs_, k_, machines=machines, method=method, **kw)

        with SolverService(workers=2, solve_fn=gated) as svc:
            leader = svc.submit(jobs, k, deadline_ms=60_000)
            follower = svc.submit(jobs, k)
            bounded = svc.submit(jobs, k, deadline_ms=60_000)
            assert follower is not leader
            assert bounded is follower  # new leader, deadline-bound rides it
            assert svc.stats()["misses"] == 2
            assert svc.stats()["coalesced"] == 1
            gate.set()
            done, not_done = wait([leader, follower], timeout=30)
            assert not not_done
            stats = svc.stats()
        direct = solve_k_bounded(jobs, k)
        assert not follower.result().degraded
        assert follower.result().value == direct.value
        assert leader.result().value == direct.value
        assert stats["inflight"] == 0

    def test_shutdown_race_resolves_future_with_service_closed(self):
        """If shutdown() wins the race between submit's closed-check and the
        pool dispatch, the future must resolve with ServiceClosed instead of
        stranding waiters forever."""
        jobs, k = _corpus(1)[0]
        svc = SolverService(workers=1)
        # Close the pool out from under the service while _closed is still
        # False — exactly the window a concurrent shutdown() can hit.
        svc._pool.shutdown(wait=True)
        fut = svc.submit(jobs, k)
        with pytest.raises(ServiceClosed):
            fut.result(timeout=10)
        assert svc.stats()["inflight"] == 0
        svc.shutdown()

    def test_no_retry_counted_when_budget_already_spent(self, monkeypatch):
        """An attempt that errors with no budget left degrades immediately;
        served.retries must stay 0 for the retry that never ran."""
        from repro.serve import service as service_mod

        jobs, k = _corpus(1)[0]
        clock = iter([0.0, 10.0])  # t0, then a reading far past the budget

        class FakeTime:
            perf_counter = staticmethod(lambda: next(clock))

        attempts = []

        def failing(jobs_, k_, *, machines=1, method="auto", **kw):
            if method == "lsa":
                return solve_k_bounded(
                    jobs_, k_, machines=machines, method=method, **kw
                )
            attempts.append(1)
            raise RuntimeError("boom")

        monkeypatch.setattr(service_mod, "time", FakeTime)
        with SolverService(workers=1, solve_fn=failing) as svc:
            result = svc.solve(jobs, k, deadline_ms=100)
            stats = svc.stats()
        assert len(attempts) == 1  # no second attempt without budget
        assert result.degraded
        assert result.metrics["served.retries"] == 0.0
        assert stats["retries"] == 0 and stats["degraded"] == 1

    def test_error_with_exhausted_budget_counts_error_not_timeout(
        self, monkeypatch
    ):
        """An attempt that *errors* after the budget ran out is an error,
        not a timeout.  (Regression: the no-budget-left error path reused
        the timeout degrade branch and stamped ``served.timeouts = 1``,
        so solver crashes near the deadline were invisible in the error
        column and inflated the timeout one.)"""
        from repro.serve import service as service_mod

        jobs, k = _corpus(1)[0]
        clock = iter([0.0, 10.0])  # t0, then a reading far past the budget

        class FakeTime:
            perf_counter = staticmethod(lambda: next(clock))

        def failing(jobs_, k_, *, machines=1, method="auto", **kw):
            if method == "lsa":
                return solve_k_bounded(
                    jobs_, k_, machines=machines, method=method, **kw
                )
            raise RuntimeError("boom")

        monkeypatch.setattr(service_mod, "time", FakeTime)
        with SolverService(workers=1, solve_fn=failing) as svc:
            result = svc.solve(jobs, k, deadline_ms=100)
            stats = svc.stats()
        assert result.degraded
        assert result.metrics["served.errors"] == 1.0
        assert result.metrics["served.timeouts"] == 0.0
        assert stats["errors"] == 1 and stats["timeouts"] == 0

    def test_exhausted_budget_spawns_no_attempt_thread(self):
        """``_attempt_with_timeout`` with no budget must not start a solve
        thread.  (Regression: it spawned the daemon thread and then waited
        0 s for it — reporting a timeout while a full cold solve nobody
        would consume kept burning a core in the background.)"""
        from repro.serve.service import _attempt_with_timeout

        started = threading.Event()

        def leaked_solve():
            started.set()
            return "never consumed"

        before = [
            t for t in threading.enumerate() if t.name == "repro-serve-attempt"
        ]
        status, payload = _attempt_with_timeout(leaked_solve, 0.0)
        assert (status, payload) == ("timeout", None)
        assert not started.wait(0.2), "zero-budget attempt ran the solve"
        after = [
            t for t in threading.enumerate() if t.name == "repro-serve-attempt"
        ]
        assert len(after) == len(before)

    def test_generous_deadline_not_degraded(self):
        jobs, k = _corpus(1)[0]
        with SolverService(workers=1) as svc:
            result = svc.solve(jobs, k, deadline_ms=60_000)
        assert not result.degraded
        assert result.value == solve_k_bounded(jobs, k).value

    def test_eviction_counted(self):
        corpus = _corpus(4)
        with SolverService(workers=1, cache_size=2) as svc:
            for jobs, k in corpus:
                svc.solve(jobs, k)
            stats = svc.stats()
        assert stats["evictions"] == 2 and stats["cache_size"] == 2

    def test_submit_validates_in_caller_thread(self):
        jobs, _ = _corpus(1)[0]
        with SolverService(workers=1) as svc:
            with pytest.raises(ValueError):
                svc.submit(jobs, -1)
            with pytest.raises(ValueError):
                svc.submit(jobs, 1, machines=0)
            with pytest.raises(ValueError):
                svc.submit(jobs, 1, method="nope")
            assert svc.stats()["requests"] == 0

    def test_closed_service_rejects_submissions(self):
        jobs, k = _corpus(1)[0]
        svc = SolverService(workers=1)
        svc.shutdown()
        with pytest.raises(ServiceClosed):
            svc.submit(jobs, k)

    def test_tracer_collects_serve_counters_and_spans(self):
        from repro.obs.tracer import Tracer

        jobs, k = _corpus(1)[0]
        tracer = Tracer()
        with SolverService(workers=1, tracer=tracer) as svc:
            svc.solve(jobs, k)
            svc.solve(jobs, k)
        assert tracer.counters["serve.requests"] == 2
        assert tracer.counters["serve.misses"] == 1
        assert tracer.counters["serve.hits"] == 1
        roots = [s.name for s in tracer.roots]
        assert "serve.request" in roots


# ---------------------------------------------------------------------------
# batched submission (the cross-instance kernel drain)
# ---------------------------------------------------------------------------


class TestBatchSubmission:
    def test_batch_equals_direct_solves(self):
        corpus = _corpus(6)
        direct = [solve_k_bounded(jobs, k) for jobs, k in corpus]
        with SolverService(workers=2) as svc:
            batch = svc.solve_batch(corpus)
            stats = svc.stats()
        for got, want in zip(batch, direct):
            assert got.value == want.value
            assert got.preemptions_used == want.preemptions_used
            assert got.accepted_ids == want.accepted_ids
            assert not got.degraded
        # Both k-groups (k=1 and k=2, 3 instances each) drained batched.
        assert stats["batched"] == 6 and stats["misses"] == 6

    def test_batched_results_are_cached_and_stamped(self):
        corpus = _corpus(4)
        with SolverService(workers=2) as svc:
            first = svc.solve_batch(corpus)
            second = svc.solve_batch(corpus)
            stats = svc.stats()
        assert all(r.metrics.get("served.batched") == 1.0 for r in first)
        assert all(r.metrics.get("served.hit") == 1.0 for r in second)
        assert stats["hits"] == 4 and stats["misses"] == 4

    def test_within_batch_duplicates_coalesce(self):
        jobs, k = _corpus(1)[0]
        other = random_jobs(10, seed=99)
        with SolverService(workers=2) as svc:
            futs = svc.submit_batch([(jobs, k), (jobs, k), (other, k)])
            results = [f.result(timeout=60) for f in futs]
            stats = svc.stats()
        assert futs[0] is futs[1]
        assert stats["coalesced"] == 1 and stats["misses"] == 2
        assert results[0].value == results[1].value

    def test_singleton_groups_dispatch_unbatched(self):
        # Three distinct k values -> three singleton miss groups -> the
        # ordinary per-request path, no batched stat.
        corpus = [(random_jobs(10, seed=s), k) for s, k in ((1, 1), (2, 2), (3, 3))]
        with SolverService(workers=2) as svc:
            results = svc.solve_batch(corpus)
            stats = svc.stats()
        assert stats["batched"] == 0 and stats["misses"] == 3
        for (jobs, k), got in zip(corpus, results):
            assert got.value == solve_k_bounded(jobs, k).value

    def test_mixed_k_batch_groups_correctly(self):
        # Two k=1 requests batch together; the lone k=3 goes solo.
        corpus = [
            (random_jobs(10, seed=11), 1),
            (random_jobs(10, seed=12), 1),
            (random_jobs(10, seed=13), 3),
        ]
        with SolverService(workers=2) as svc:
            results = svc.solve_batch(corpus)
            stats = svc.stats()
        assert stats["batched"] == 2
        for (jobs, k), got in zip(corpus, results):
            assert got.value == solve_k_bounded(jobs, k).value
            verify_schedule(got.schedule, k=k).assert_ok()

    def test_batch_validates_before_enqueueing(self):
        jobs, _ = _corpus(1)[0]
        with SolverService(workers=1) as svc:
            with pytest.raises(ValueError):
                svc.submit_batch([(jobs, -1)])
            with pytest.raises(ValueError):
                svc.submit_batch([(jobs, 1)], machines=0)
            assert svc.stats()["inflight"] == 0

    def test_batch_failure_retries_once_then_fails_all(self):
        corpus = _corpus(4, seed=31)
        calls = []

        def boom(jobs_list, k, **kw):
            calls.append(len(jobs_list))
            raise RuntimeError("batch kernel down")

        with SolverService(workers=1) as svc:
            import repro.serve.service as service_mod

            original = service_mod.solve_k_bounded_batch
            service_mod.solve_k_bounded_batch = boom
            try:
                futs = svc.submit_batch([(j, 1) for j, _ in corpus])
                for fut in futs:
                    with pytest.raises(RuntimeError, match="batch kernel down"):
                        fut.result(timeout=60)
            finally:
                service_mod.solve_k_bounded_batch = original
            stats = svc.stats()
        assert calls == [4, 4]  # one retry of the whole group
        assert stats["retries"] == 1 and stats["errors"] == 4

    def test_tracer_counts_batched_requests(self):
        from repro.obs.tracer import Tracer

        corpus = _corpus(4, seed=41)
        tracer = Tracer()
        with SolverService(workers=2, tracer=tracer) as svc:
            svc.solve_batch(corpus)
        assert tracer.counters["serve.batched"] == 4
        assert tracer.counters["serve.misses"] == 4


# ---------------------------------------------------------------------------
# the stress test (the tentpole's acceptance proof)
# ---------------------------------------------------------------------------

STRESS_THREADS = 16
STRESS_REQUESTS_PER_THREAD = 200
STRESS_CORPUS = 20


def test_stress_concurrent_clients():
    """16 threads x 200 requests over a 20-instance corpus: no deadlock,
    hit ratio > 0.8, coalescing observed, every certificate re-verifies."""
    corpus = _corpus(STRESS_CORPUS)
    direct = {
        request_key(jobs, k): solve_k_bounded(jobs, k) for jobs, k in corpus
    }

    warm = threading.Event()

    def first_solve_slowly(jobs_, k_, *, machines=1, method="auto", **kw):
        # Hold the very first cold solve open long enough for the barrier'd
        # clients to pile onto its key, making coalescing deterministic.
        result = solve_k_bounded(jobs_, k_, machines=machines, method=method, **kw)
        if not warm.is_set():
            time.sleep(0.2)
            warm.set()
        return result

    barrier = threading.Barrier(STRESS_THREADS)
    results = [None] * STRESS_THREADS
    errors = []

    with SolverService(workers=8, cache_size=64, solve_fn=first_solve_slowly) as svc:

        def client(tid: int) -> None:
            rng = Random(1000 + tid)
            mine = []
            try:
                barrier.wait(timeout=30)
                # Every client opens on corpus[0]: one leader, the rest
                # coalesce onto its in-flight future.
                jobs, k = corpus[0]
                mine.append((request_key(jobs, k), svc.solve(jobs, k, timeout=60)))
                for _ in range(STRESS_REQUESTS_PER_THREAD - 1):
                    jobs, k = corpus[rng.randrange(len(corpus))]
                    mine.append((request_key(jobs, k), svc.solve(jobs, k, timeout=60)))
            except Exception as exc:  # noqa: BLE001 - reported by the main thread
                errors.append((tid, exc))
            results[tid] = mine

        threads = [
            threading.Thread(target=client, args=(tid,), name=f"client-{tid}")
            for tid in range(STRESS_THREADS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        stuck = [t.name for t in threads if t.is_alive()]
        assert not stuck, f"deadlocked clients: {stuck}"
        assert not errors, f"client failures: {errors[:3]}"
        stats = svc.stats()

    total = STRESS_THREADS * STRESS_REQUESTS_PER_THREAD
    assert stats["requests"] == total
    assert stats["inflight"] == 0
    assert stats["errors"] == 0 and stats["degraded"] == 0

    # Cache effectiveness: with 20 unique keys over 3200 requests almost
    # everything must be served from cache.
    hit_ratio = stats["hits"] / stats["requests"]
    assert hit_ratio > 0.8, f"hit ratio {hit_ratio:.3f} (stats: {stats})"

    # Coalescing must actually have happened (the opening pile-up guarantees
    # concurrent duplicates while corpus[0]'s leader is still in flight).
    assert stats["coalesced"] > 0, f"no coalesced requests (stats: {stats})"
    assert stats["hits"] + stats["misses"] + stats["coalesced"] == total

    # Every answer matches the direct solve and re-verifies its certificate.
    seen_keys = set()
    for mine in results:
        assert mine is not None
        for key, result in mine:
            assert result.value == direct[key].value, key
            assert not result.degraded
            if key not in seen_keys:
                seen_keys.add(key)
                k = next(kk for jobs, kk in corpus if request_key(jobs, kk) == key)
                verify_schedule(result.schedule, k=k).assert_ok()
    assert seen_keys == set(direct)


# ---------------------------------------------------------------------------
# the SolveRequest surface (PR 7 redesign)
# ---------------------------------------------------------------------------


class TestSolveRequestSurface:
    """The redesigned single-value-object API, and its interplay with the
    legacy spellings (whose behaviour the rest of this file still pins)."""

    @pytest.fixture
    def jobs(self):
        return JobSet([Job(0, 0, 10, 3), Job(1, 1, 6, 2), Job(2, 2, 9, 4)])

    def test_solve_request_form_is_silent_and_agrees_with_direct(self, jobs):
        import warnings

        from repro.api import SolveRequest

        req = SolveRequest(jobs=jobs, k=1)
        with SolverService(workers=1) as svc:
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                result = svc.solve(req)
            assert [w for w in caught if issubclass(w.category, DeprecationWarning)] == []
        assert result.value == solve_k_bounded(jobs, 1).value

    def test_request_and_legacy_spellings_share_one_cache_entry(self, jobs):
        import warnings

        from repro.api import SolveRequest

        with SolverService(workers=1) as svc:
            svc.solve(SolveRequest(jobs=jobs, k=1))
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DeprecationWarning)
                legacy = svc.solve(jobs, 1)
            stats = svc.stats()
        assert legacy.metrics.get("served.hit")
        assert (stats["misses"], stats["hits"]) == (1, 1)

    def test_extra_args_alongside_request_raise(self, jobs):
        from repro.api import SolveRequest

        req = SolveRequest(jobs=jobs, k=1)
        with SolverService(workers=1) as svc:
            with pytest.raises(TypeError):
                svc.submit(req, 2)
            with pytest.raises(TypeError):
                svc.solve(req, deadline_ms=50.0)
            with pytest.raises(TypeError):
                svc.submit_batch([req], method="combined")

    def test_mixed_batch_spellings_raise(self, jobs):
        from repro.api import SolveRequest

        with SolverService(workers=1) as svc:
            with pytest.raises(TypeError):
                svc.submit_batch([SolveRequest(jobs=jobs, k=1), (jobs, 2)])

    def test_batch_of_requests_groups_by_parameters(self):
        from repro.api import SolveRequest

        corpus = [random_jobs(8, seed=900 + i) for i in range(6)]
        reqs = [SolveRequest(jobs=jobs, k=1) for jobs in corpus[:3]]
        reqs += [SolveRequest(jobs=jobs, k=2) for jobs in corpus[3:]]
        with SolverService(workers=2) as svc:
            results = svc.solve_batch(reqs, timeout=60)
            stats = svc.stats()
        assert len(results) == 6
        for req, result in zip(reqs, results):
            assert result.value == solve_k_bounded(req.jobs, req.k).value
            assert result.metrics.get("served.batched")
        # Two (k, machines, method) groups of three, both batched.
        assert stats["batched"] == 6

    def test_deadline_requests_in_batch_take_single_path(self, jobs):
        from repro.api import SolveRequest

        other = random_jobs(8, seed=950)
        reqs = [
            SolveRequest(jobs=jobs, k=1),
            SolveRequest(jobs=other, k=1, deadline_ms=60_000.0),
        ]
        with SolverService(workers=2) as svc:
            results = svc.solve_batch(reqs, timeout=60)
            stats = svc.stats()
        assert len(results) == 2
        assert results[1].value == solve_k_bounded(other, 1).value
        # The deadline request never joins a batch group.
        assert stats["batched"] == 0
        assert stats["misses"] == 2

    def test_validation_happens_in_request_construction(self, jobs):
        import warnings

        from repro.api import SolveRequest

        with pytest.raises(ValueError):
            SolveRequest(jobs=jobs, k=-1)
        with SolverService(workers=1) as svc:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DeprecationWarning)
                with pytest.raises(ValueError):
                    svc.submit(jobs, -1)  # legacy path funnels into the same check
                with pytest.raises(ValueError):
                    svc.submit(jobs, 1, machines=0)

    def test_service_signature_snapshot(self):
        import inspect

        def names(fn):
            return list(inspect.signature(fn).parameters)

        assert names(SolverService.submit) == [
            "self", "request", "k", "machines", "method", "deadline_ms",
        ]
        assert names(SolverService.solve) == [
            "self", "request", "k", "machines", "method", "deadline_ms", "timeout",
        ]
        assert names(SolverService.submit_batch) == [
            "self", "requests", "machines", "method",
        ]
        assert names(SolverService.solve_batch) == [
            "self", "requests", "machines", "method", "timeout",
        ]
        # Everything after the request object is optional (legacy-only).
        for fn in (SolverService.submit, SolverService.solve):
            params = inspect.signature(fn).parameters
            assert all(
                p.default is None for name, p in params.items()
                if name not in ("self", "request", "requests")
            )


class TestServiceStats:
    def test_stats_is_a_frozen_dataclass_with_dict_compat(self):
        from dataclasses import FrozenInstanceError

        from repro.serve import ServiceStats

        jobs = JobSet([Job(0, 0, 10, 3)])
        with SolverService(workers=1) as svc:
            from repro.api import SolveRequest

            svc.solve(SolveRequest(jobs=jobs, k=1))
            stats = svc.stats()
        assert isinstance(stats, ServiceStats)
        assert stats.requests == 1 and stats["requests"] == 1
        assert "hits" in stats and "nope" not in stats
        with pytest.raises(KeyError):
            stats["nope"]
        with pytest.raises(FrozenInstanceError):
            stats.requests = 5
        as_dict = stats.as_dict()
        assert as_dict["requests"] == 1
        assert set(as_dict) == set(ServiceStats().as_dict())

    def test_aggregate_sums_fieldwise(self):
        from repro.serve import ServiceStats

        a = ServiceStats(requests=3, hits=1, cache_size=2)
        b = ServiceStats(requests=5, misses=4, cache_size=7, inflight=1)
        total = ServiceStats.aggregate([a, b])
        assert total.requests == 8
        assert total.hits == 1
        assert total.misses == 4
        assert total.cache_size == 9
        assert total.inflight == 1
        assert ServiceStats.aggregate([]) == ServiceStats()
