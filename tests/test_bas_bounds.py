"""Golden tests: Appendix-A closed forms vs the running algorithms."""

from fractions import Fraction

import pytest

from repro.core.bas.bounds import (
    appendix_a_alg_value,
    appendix_a_loss_lower_bound,
    appendix_a_size,
    appendix_a_tm_values,
    appendix_a_total_value,
    bas_loss_bound,
)
from repro.core.bas.tm import tm_optimal_bas, tm_values
from repro.core.bas.verify import verify_bas
from repro.instances.lower_bounds import appendix_a_forest


class TestBoundFormulas:
    def test_loss_bound_basic(self):
        # ⌊log_{k+1} n⌋ + 1: the exact Lemma 3.18 layer count.
        assert bas_loss_bound(8, 1) == pytest.approx(4.0)
        assert bas_loss_bound(9, 2) == pytest.approx(3.0)
        assert bas_loss_bound(7, 1) == pytest.approx(3.0)
        assert bas_loss_bound(8, 2) == pytest.approx(2.0)

    def test_loss_bound_clamped(self):
        assert bas_loss_bound(1, 1) == 1.0

    def test_loss_bound_rejects_k0(self):
        with pytest.raises(ValueError):
            bas_loss_bound(10, 0)

    def test_size_formula(self):
        assert appendix_a_size(2, 3) == 15
        assert appendix_a_size(3, 2) == 13
        assert appendix_a_size(1, 4) == 5

    def test_total_value(self):
        assert appendix_a_total_value(4) == 5


class TestLemmaA2GoldenValues:
    @pytest.mark.parametrize("k,K,L", [(1, 2, 3), (2, 4, 3), (3, 6, 2), (1, 3, 4)])
    def test_tm_matches_closed_form_at_every_level(self, k, K, L):
        forest = appendix_a_forest(K, L, scale=False)
        t, m = tm_values(forest, k)
        depths = forest.depths()
        for v in range(forest.n):
            t_expect, m_expect = appendix_a_tm_values(k, K, L, depths[v])
            assert t[v] == t_expect, f"t mismatch at node {v} level {depths[v]}"
            assert m[v] == m_expect, f"m mismatch at node {v} level {depths[v]}"

    def test_t_always_beats_m(self):
        # Lemma A.2's closing remark: t(v) > m(v) at every level.
        for level in range(4):
            t, m = appendix_a_tm_values(2, 4, 3, level)
            assert t > m

    def test_level_out_of_range(self):
        with pytest.raises(ValueError):
            appendix_a_tm_values(1, 2, 3, 4)


class TestCorollaryA3:
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_alg_value_below_cap(self, k):
        K = 2 * k
        for L in range(1, 6):
            alg = appendix_a_alg_value(k, K, L)
            assert alg < Fraction(K, K - k)

    def test_alg_value_is_geometric_sum(self):
        assert appendix_a_alg_value(1, 2, 3) == Fraction(15, 8)

    def test_running_tm_equals_formula(self):
        for k, L in [(1, 3), (2, 2), (3, 2)]:
            K = 2 * k
            forest = appendix_a_forest(K, L, scale=False)
            bas = tm_optimal_bas(forest, k)
            verify_bas(bas, k).assert_ok()
            assert bas.value == appendix_a_alg_value(k, K, L)


class TestTheorem320LowerBound:
    def test_loss_grows_linearly_in_L(self):
        # ALG stays below 2, so each extra level adds > 0.35 to the loss
        # (approaching 1/2 per level as ALG -> K/(K-k) = 2).
        losses = [appendix_a_loss_lower_bound(2, L) for L in range(1, 6)]
        diffs = [b - a for a, b in zip(losses, losses[1:])]
        assert all(d > 0.35 for d in diffs)
        assert losses == sorted(losses)

    def test_loss_exceeds_half_log(self):
        # ALG < 2 means loss > (L+1)/2 — the exact inequality of the proof.
        for k in (1, 2):
            for L in (2, 3, 4):
                assert appendix_a_loss_lower_bound(k, L) > (L + 1) / 2

    def test_scaled_and_unscaled_forests_agree_on_loss(self):
        k, K, L = 2, 4, 3
        scaled = appendix_a_forest(K, L, scale=True)
        exact = appendix_a_forest(K, L, scale=False)
        loss_scaled = scaled.total_value / tm_optimal_bas(scaled, k).value
        loss_exact = exact.total_value / tm_optimal_bas(exact, k).value
        assert float(loss_scaled) == pytest.approx(float(loss_exact))


class TestForestGenerator:
    def test_structure(self):
        f = appendix_a_forest(3, 2)
        assert f.n == 13
        assert f.degree(0) == 3
        assert all(f.degree(v) in (0, 3) for v in range(f.n))

    def test_level_values_scaled(self):
        f = appendix_a_forest(2, 2, scale=True)
        depths = f.depths()
        for v in range(f.n):
            assert f.value(v) == 2 ** (2 - depths[v])

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            appendix_a_forest(1, 2)
        with pytest.raises(ValueError):
            appendix_a_forest(2, -1)
