"""Tests for the JSON-config sweep runner and its cell registry."""

import json

import pytest

from repro.analysis.config import (
    CELL_REGISTRY,
    load_config,
    register_cell,
    run_config,
)


class TestRegistry:
    def test_builtin_cells_present(self):
        for name in ("price_mixed", "bas_loss_random", "k0_price_random",
                     "budget_vs_pipeline"):
            assert name in CELL_REGISTRY

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_cell("price_mixed")(lambda rng: {"x": 1.0})


class TestLoadConfig:
    def test_from_dict(self):
        cfg = load_config({"cell": "price_mixed", "axes": {"k": [1]}})
        assert cfg["repeats"] == 1 and cfg["seed"] == 0

    def test_from_file(self, tmp_path):
        p = tmp_path / "cfg.json"
        p.write_text(json.dumps({"cell": "bas_loss_random", "axes": {"n": [50]}}))
        cfg = load_config(p)
        assert cfg["cell"] == "bas_loss_random"

    def test_missing_cell(self):
        with pytest.raises(ValueError, match="'cell'"):
            load_config({"axes": {}})

    def test_unknown_cell(self):
        with pytest.raises(ValueError, match="unknown cell"):
            load_config({"cell": "nope"})

    def test_bad_axes(self):
        with pytest.raises(ValueError, match="axes"):
            load_config({"cell": "price_mixed", "axes": {"k": 3}})


class TestRunConfig:
    def test_grid_rows(self):
        table = run_config(
            {"cell": "bas_loss_random", "axes": {"n": [40, 80], "k": [1, 2]},
             "repeats": 2, "seed": 5}
        )
        assert len(table.rows) == 4
        assert "loss" in table.columns

    def test_metrics_include_worst_case(self):
        table = run_config(
            {"cell": "bas_loss_random", "axes": {"n": [40]}, "repeats": 3}
        )
        assert "loss (worst)" in table.columns
        row = table.rows[0]
        loss = row[list(table.columns).index("loss")]
        worst = row[list(table.columns).index("loss (worst)")]
        assert worst >= loss - 1e-12

    def test_deterministic(self):
        cfg = {"cell": "k0_price_random", "axes": {"P": [4.0]}, "seed": 9}
        a = run_config(cfg).rows
        b = run_config(cfg).rows
        assert a == b

    def test_budget_vs_pipeline_cell(self):
        table = run_config(
            {"cell": "budget_vs_pipeline", "axes": {"n": [15]}, "seed": 2}
        )
        cols = list(table.columns)
        row = table.rows[0]
        assert row[cols.index("pipeline")] > 0
        assert row[cols.index("budget_edf")] > 0


class TestCliIntegration:
    def test_sweep_command(self, tmp_path, capsys):
        from repro.cli import main

        p = tmp_path / "cfg.json"
        p.write_text(json.dumps({"cell": "bas_loss_random", "axes": {"n": [40]}}))
        assert main(["sweep", str(p)]) == 0
        out = capsys.readouterr().out
        assert "bas_loss_random" in out

    def test_cells_command(self, capsys):
        from repro.cli import main

        assert main(["cells"]) == 0
        out = capsys.readouterr().out
        assert "price_mixed" in out
