"""Property-based tests for the full reduction pipeline (Theorem 4.2)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.pricing import price_bound_n
from repro.core.reduction import (
    forest_to_schedule,
    reduce_schedule_to_k_preemptive,
    schedule_to_forest,
)
from repro.core.bas.subforest import SubForest
from repro.core.bas.tm import tm_optimal_bas
from repro.scheduling.laminar import is_laminar
from repro.scheduling.verify import verify_schedule
from tests.strategies import feasible_schedules


@given(feasible_schedules(), st.integers(min_value=1, max_value=3))
def test_reduction_feasible_and_within_budget(sched, k):
    out = reduce_schedule_to_k_preemptive(sched, k)
    verify_schedule(out, k=k).assert_ok()


@given(feasible_schedules(), st.integers(min_value=1, max_value=3))
def test_reduction_value_guarantee(sched, k):
    # Theorem 4.2's provable factor is the integer layer bound (the 4-job
    # uniform nest — one wrapper around three inner jobs — loses 4/3 at
    # k=2, above the raw log_3 4 the asymptotic statement suggests).
    out = reduce_schedule_to_k_preemptive(sched, k)
    n = len(sched)
    bound = price_bound_n(n, k) if n > 1 else 1.0
    assert out.value * bound >= sched.value * (1 - 1e-9)


@given(feasible_schedules(), st.integers(min_value=1, max_value=3))
def test_reduction_keeps_subset_of_jobs(sched, k):
    out = reduce_schedule_to_k_preemptive(sched, k)
    assert set(out.scheduled_ids) <= set(sched.scheduled_ids)


@given(feasible_schedules())
def test_forest_roundtrip_with_full_retention(sched):
    if len(sched) == 0:
        return
    forest, node_to_job = schedule_to_forest(sched)
    bas = SubForest(forest, range(forest.n))
    out = forest_to_schedule(sched, node_to_job, bas)
    verify_schedule(out).assert_ok()
    assert out.value == sched.value
    # Compaction never increases any job's segment count.
    for job_id in out.scheduled_ids:
        assert len(out[job_id]) <= len(sched[job_id])


@given(feasible_schedules())
def test_forest_reflects_preemption_structure(sched):
    if len(sched) == 0:
        return
    forest, node_to_job = schedule_to_forest(sched)
    assert forest.n == len(sched)
    # A job with s segments was preempted s-1 times: it needs at least s-1
    # descendants in the forest (each gap holds at least one).
    for v in range(forest.n):
        job_id = node_to_job[v]
        gaps = len(sched[job_id]) - 1
        assert len(forest.subtree_nodes(v)) - 1 >= gaps


@given(feasible_schedules(), st.integers(min_value=1, max_value=3))
def test_tm_on_schedule_forest_is_valid(sched, k):
    if len(sched) == 0:
        return
    forest, node_to_job = schedule_to_forest(sched)
    bas = tm_optimal_bas(forest, k)
    out = forest_to_schedule(sched, node_to_job, bas)
    verify_schedule(out, k=k).assert_ok()
    # Reduced value equals the BAS value exactly.
    assert out.value == bas.value


@given(feasible_schedules())
def test_edf_admission_output_laminar(sched):
    assert is_laminar(sched)
