"""Tests for the sharded asyncio gateway (`repro.gateway`).

Most tests drive :meth:`Gateway.handle_solve` directly or the real HTTP
server over inline (in-process) shards — the full wire codec, routing,
admission, quota and batching paths without forking.  One end-to-end
test runs a real two-process shard fleet.
"""

import asyncio
import json
import warnings

import pytest

from repro.api import SolveRequest, SolveResult, solve_k_bounded
from repro.gateway import (
    Gateway,
    HashRing,
    InlineShard,
    QuotaManager,
    ShardError,
    ShardLink,
    TokenBucket,
    ring_shard_for_key,
    shard_for_key,
)
from repro.gateway.bench import (
    ConnectionPool,
    _http_json,
    _http_json_full,
    run_gateway_bench,
)
from repro.instances import random_jobs


def _requests(count, n=8, seed=100, k=1):
    return [
        SolveRequest(jobs=random_jobs(n, seed=seed + i), k=k) for i in range(count)
    ]


def _run(coro):
    return asyncio.run(coro)


def _inline_factory(**service_kwargs):
    service_kwargs.setdefault("workers", 1)
    return lambda index: InlineShard(**service_kwargs)


# ---------------------------------------------------------------------------
# routing
# ---------------------------------------------------------------------------


class TestRouting:
    def test_deterministic_and_in_range(self):
        for req in _requests(20):
            key = req.canonical_key()
            for shards in (1, 2, 3, 8):
                first = shard_for_key(key, shards)
                assert 0 <= first < shards
                assert shard_for_key(key, shards) == first

    def test_permuted_instance_same_shard(self):
        req = _requests(1)[0]
        from repro.scheduling.job import JobSet

        twin = SolveRequest(jobs=JobSet(tuple(reversed(req.jobs.jobs))), k=req.k)
        assert shard_for_key(twin.canonical_key(), 4) == shard_for_key(
            req.canonical_key(), 4
        )

    def test_spreads_over_shards(self):
        # 40 random keys over 2 shards: both sides must be populated.
        assignments = {shard_for_key(r.canonical_key(), 2) for r in _requests(40)}
        assert assignments == {0, 1}

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            shard_for_key("ab" * 16, 0)
        with pytest.raises(ValueError):
            shard_for_key("short", 2)


# ---------------------------------------------------------------------------
# quotas
# ---------------------------------------------------------------------------


class TestTokenBucket:
    def test_burst_then_deny_then_refill(self):
        now = [0.0]
        bucket = TokenBucket(rate=1.0, burst=2, clock=lambda: now[0])
        assert bucket.try_acquire() == (True, 0.0)
        assert bucket.try_acquire() == (True, 0.0)
        ok, retry_after = bucket.try_acquire()
        assert not ok and retry_after == pytest.approx(1.0)
        now[0] += 1.0
        assert bucket.try_acquire()[0]

    def test_refill_caps_at_burst(self):
        now = [0.0]
        bucket = TokenBucket(rate=100.0, burst=3, clock=lambda: now[0])
        now[0] += 60.0
        for _ in range(3):
            assert bucket.try_acquire()[0]
        assert not bucket.try_acquire()[0]

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0, burst=1)
        with pytest.raises(ValueError):
            TokenBucket(rate=1, burst=0)

    def test_manager_isolates_tenants_and_disables(self):
        now = [0.0]
        quota = QuotaManager(1.0, 1, clock=lambda: now[0])
        assert quota.check("a")[0]
        assert not quota.check("a")[0]
        assert quota.check("b")[0]  # fresh tenant, fresh bucket
        unlimited = QuotaManager(None)
        assert all(unlimited.check("a")[0] for _ in range(100))


# ---------------------------------------------------------------------------
# gateway over inline shards
# ---------------------------------------------------------------------------


class TestGatewayInline:
    def test_solve_routes_to_hashed_shard_and_hits_cache(self):
        async def scenario():
            gateway = Gateway(
                shards=2, shard_factory=_inline_factory(), batch_window_ms=0.0
            )
            async with gateway:
                outcomes = []
                for req in _requests(6):
                    status, payload, _ = await gateway.handle_solve(req.to_wire())
                    repeat_status, repeat_payload, _ = await gateway.handle_solve(
                        req.to_wire()
                    )
                    outcomes.append(
                        (req, status, payload, repeat_status, repeat_payload)
                    )
                stats = await gateway.fleet_stats()
            return outcomes, stats

        outcomes, stats = _run(scenario())
        for req, status, payload, repeat_status, repeat_payload in outcomes:
            assert status == 200 and repeat_status == 200
            expected = shard_for_key(req.canonical_key(), 2)
            assert payload["shard"] == expected
            assert repeat_payload["shard"] == expected
            served = SolveResult.from_wire(payload["result"])
            direct = solve_k_bounded(req.jobs, k=req.k)
            assert served.value == direct.value
            assert SolveResult.from_wire(repeat_payload["result"]).metrics.get(
                "served.hit"
            )
        assert stats["fleet"]["hits"] >= 6
        assert stats["gateway"]["admitted"] == 12
        assert stats["gateway"]["sharded"] == 12

    def test_batching_drains_compatible_misses_together(self):
        async def scenario():
            gateway = Gateway(
                shards=1,
                shard_factory=_inline_factory(workers=2),
                batch_window_ms=50.0,
                batch_max=64,
            )
            async with gateway:
                reqs = _requests(4, seed=300)
                results = await asyncio.gather(
                    *(gateway.handle_solve(r.to_wire()) for r in reqs)
                )
                stats = await gateway.fleet_stats()
            return results, stats

        results, stats = _run(scenario())
        assert all(status == 200 for status, _, _ in results)
        # All four arrived inside one window: the shard saw them as one
        # submit_batch and drained the misses through a batched solve.
        assert stats["fleet"]["batched"] == 4
        for status, payload, _ in results:
            assert SolveResult.from_wire(payload["result"]).metrics.get(
                "served.batched"
            )

    def test_quota_denial_is_429_with_retry_after(self):
        async def scenario():
            now = [0.0]
            gateway = Gateway(
                shards=2,
                shard_factory=_inline_factory(),
                batch_window_ms=0.0,
                quota_rate=1.0,
                quota_burst=2,
                clock=lambda: now[0],
            )
            async with gateway:
                req = _requests(1)[0]
                statuses = []
                headers_seen = []
                for _ in range(3):
                    status, _payload, headers = await gateway.handle_solve(
                        req.to_wire(), tenant="team-a"
                    )
                    statuses.append(status)
                    headers_seen.append(headers)
                # A different tenant has its own untouched bucket.
                other_status, _, _ = await gateway.handle_solve(
                    req.to_wire(), tenant="team-b"
                )
                counters = dict(gateway.counters)
            return statuses, headers_seen, other_status, counters

        statuses, headers_seen, other_status, counters = _run(scenario())
        assert statuses == [200, 200, 429]
        assert int(headers_seen[2]["Retry-After"]) >= 1
        assert other_status == 200
        assert counters["quota_denied"] == 1
        # Quota rejections happen before routing: only admitted requests shard.
        assert counters["sharded"] == 3
        assert counters["admitted"] == 3

    def test_saturated_shard_backpressures_with_429(self):
        class StuckShard:
            """A shard whose solves block until released."""

            def __init__(self):
                self.release = asyncio.Event()

            async def start(self):
                pass

            async def call(self, op, **payload):
                if op in ("solve", "batch"):
                    await self.release.wait()
                return {"ok": True, "result": None, "results": []}

            async def stop(self):
                self.release.set()

        async def scenario():
            stuck = StuckShard()
            gateway = Gateway(
                shards=1,
                shard_factory=lambda index: stuck,
                batch_window_ms=0.0,
                max_inflight_per_shard=1,
            )
            async with gateway:
                req = _requests(1)[0]
                first = asyncio.ensure_future(gateway.handle_solve(req.to_wire()))
                await asyncio.sleep(0.05)  # let it occupy the shard
                status, payload, headers = await gateway.handle_solve(req.to_wire())
                stuck.release.set()
                await first
                counters = dict(gateway.counters)
            return status, payload, headers, counters

        status, payload, headers, counters = _run(scenario())
        assert status == 429
        assert payload["error"] == "shard saturated"
        assert headers["Retry-After"] == "1"
        assert counters["rejected"] == 1

    def test_saturation_retry_after_is_configurable_and_aligned(self):
        """Both 429 paths share one Retry-After convention; the saturation
        hint is configurable instead of a hardcoded "1".  (Regression: the
        two rejection paths used to format their headers independently —
        the quota path computed delta-seconds while saturation pinned a
        literal, and no knob could tell clients how long a saturated shard
        expects to stay busy.)"""

        class StuckShard:
            def __init__(self):
                self.release = asyncio.Event()

            async def start(self):
                pass

            async def call(self, op, **payload):
                if op in ("solve", "batch"):
                    await self.release.wait()
                return {"ok": True, "result": None, "results": []}

            async def stop(self):
                self.release.set()

        async def scenario():
            stuck = StuckShard()
            gateway = Gateway(
                shards=1,
                shard_factory=lambda index: stuck,
                batch_window_ms=0.0,
                max_inflight_per_shard=1,
                saturation_retry_after_s=3.2,
            )
            async with gateway:
                req = _requests(1)[0]
                first = asyncio.ensure_future(gateway.handle_solve(req.to_wire()))
                await asyncio.sleep(0.05)
                status, _payload, headers = await gateway.handle_solve(req.to_wire())
                stuck.release.set()
                await first
            return status, headers

        status, headers = _run(scenario())
        assert status == 429
        # One convention for both paths: ceil to whole delta-seconds.
        assert headers["Retry-After"] == "4"

    def test_saturation_retry_after_validation(self):
        with pytest.raises(ValueError, match="saturation_retry_after_s"):
            Gateway(shards=1, saturation_retry_after_s=0)

    def test_http_429s_carry_retry_after_on_both_paths(self):
        """Over real sockets, quota and saturation rejections both emit the
        Retry-After header (the in-process handle_solve tests can't prove
        the HTTP layer actually writes the extra headers out)."""

        class StuckShard:
            def __init__(self):
                self.release = asyncio.Event()

            async def start(self):
                pass

            async def call(self, op, **payload):
                if op in ("solve", "batch"):
                    await self.release.wait()
                return {"ok": True, "result": None, "results": []}

            async def stop(self):
                self.release.set()

        async def scenario():
            req = _requests(1)[0]
            # Quota path: burst of 1, second request from the tenant denied.
            now = [0.0]
            quota_gw = Gateway(
                shards=1,
                shard_factory=_inline_factory(),
                batch_window_ms=0.0,
                quota_rate=0.5,
                quota_burst=1,
                clock=lambda: now[0],
            )
            async with quota_gw:
                host, port = "127.0.0.1", quota_gw.port
                await _http_json_full(host, port, "POST", "/v1/solve", req.to_wire())
                quota = await _http_json_full(
                    host, port, "POST", "/v1/solve", req.to_wire()
                )
            # Saturation path: one stuck shard, inflight bound of 1.
            stuck = StuckShard()
            sat_gw = Gateway(
                shards=1,
                shard_factory=lambda index: stuck,
                batch_window_ms=0.0,
                max_inflight_per_shard=1,
                saturation_retry_after_s=2.5,
            )
            async with sat_gw:
                host, port = "127.0.0.1", sat_gw.port
                blocked = asyncio.ensure_future(
                    _http_json_full(host, port, "POST", "/v1/solve", req.to_wire())
                )
                await asyncio.sleep(0.05)
                saturated = await _http_json_full(
                    host, port, "POST", "/v1/solve", req.to_wire()
                )
                stuck.release.set()
                await blocked
            return quota, saturated

        quota, saturated = _run(scenario())
        q_status, q_payload, q_headers = quota
        s_status, s_payload, s_headers = saturated
        assert q_status == 429 and q_payload["error"] == "tenant quota exhausted"
        assert int(q_headers["retry-after"]) >= 1
        assert s_status == 429 and s_payload["error"] == "shard saturated"
        assert s_headers["retry-after"] == "3"  # ceil(2.5), the shared rule

    def test_bad_wire_document_is_400(self):
        async def scenario():
            gateway = Gateway(
                shards=1, shard_factory=_inline_factory(), batch_window_ms=0.0
            )
            async with gateway:
                return [
                    await gateway.handle_solve({"format": "nope"}),
                    await gateway.handle_solve({"format": "repro-wire/1", "kind": "solve_request"}),
                ]

        for status, payload, _ in _run(scenario()):
            assert status == 400
            assert "error" in payload

    def test_shard_side_validation_error_maps_to_400(self):
        async def scenario():
            gateway = Gateway(
                shards=1, shard_factory=_inline_factory(), batch_window_ms=0.0
            )
            async with gateway:
                doc = _requests(1)[0].to_wire()
                doc["k"] = 10**6  # passes SolveRequest, fails solver-side cap
                return await gateway.handle_solve(doc)

        status, payload, _ = _run(scenario())
        assert status in (200, 400)  # large k may be legal; must not be a 502

    def test_http_surface_end_to_end(self):
        async def scenario():
            gateway = Gateway(
                shards=2, shard_factory=_inline_factory(), batch_window_ms=0.0
            )
            async with gateway:
                host, port = "127.0.0.1", gateway.port
                req = _requests(1)[0]
                solve = await _http_json(host, port, "POST", "/v1/solve", req.to_wire())
                tenant = await _http_json(
                    host, port, "POST", "/v1/solve", req.to_wire(),
                    headers={"X-Tenant": "team-a"},
                )
                stats = await _http_json(host, port, "GET", "/v1/stats")
                health = await _http_json(host, port, "GET", "/v1/healthz")
                missing = await _http_json(host, port, "GET", "/nope")
                bad_json = await _http_json(host, port, "POST", "/v1/solve", None)
                return req, solve, tenant, stats, health, missing, bad_json

        req, solve, tenant, stats, health, missing, bad_json = _run(scenario())
        status, payload = solve
        assert status == 200
        assert payload["format"] == "repro-wire/1"
        assert payload["kind"] == "solve_response"
        assert payload["shard"] == shard_for_key(req.canonical_key(), 2)
        assert tenant[0] == 200
        assert stats[0] == 200 and stats[1]["fleet"]["requests"] == 2
        for counter in ("shard_restarts", "failovers", "ring_moves"):
            assert stats[1]["gateway"][counter] == 0  # present from day one
        assert stats[1]["routing"] == "mod"
        assert stats[1]["supervisor"]["running"] is True
        assert health == (200, {"status": "ok", "shards": 2})
        assert missing[0] == 404
        assert bad_json[0] == 400

    def test_inline_shard_surfaces_service_errors(self):
        async def scenario():
            shard = InlineShard(workers=1)
            try:
                with pytest.raises(ShardError) as excinfo:
                    await shard.call("solve", request={"format": "nope"})
                assert excinfo.value.is_client_error
                with pytest.raises(ShardError):
                    await shard.call("frobnicate")
            finally:
                await shard.stop()

        _run(scenario())


# ---------------------------------------------------------------------------
# real process fleet
# ---------------------------------------------------------------------------


class TestGatewayProcessFleet:
    def test_two_process_shards_end_to_end(self):
        async def scenario():
            gateway = Gateway(
                shards=2, service_kwargs={"workers": 1}, batch_window_ms=2.0
            )
            async with gateway:
                host, port = "127.0.0.1", gateway.port
                reqs = _requests(4, seed=500)
                answers = []
                for _pass in range(2):
                    for req in reqs:
                        status, payload = await _http_json(
                            host, port, "POST", "/v1/solve", req.to_wire()
                        )
                        answers.append((req, status, payload))
                stats = await _http_json(host, port, "GET", "/v1/stats")
            return answers, stats

        answers, (stats_status, stats_payload) = _run(scenario())
        for req, status, payload in answers:
            assert status == 200
            assert payload["shard"] == shard_for_key(req.canonical_key(), 2)
            served = SolveResult.from_wire(payload["result"])
            assert served.value == solve_k_bounded(req.jobs, k=req.k).value
        assert stats_status == 200
        assert stats_payload["fleet"]["hits"] >= 4  # whole second pass hit
        assert stats_payload["fleet"]["misses"] == 4


# ---------------------------------------------------------------------------
# the bench harness (inline mode: fast, forkless)
# ---------------------------------------------------------------------------


class TestGatewayBench:
    def test_quick_inline_bench_payload(self):
        payload = run_gateway_bench(
            shards=2,
            rps=40.0,
            duration_s=1.0,
            corpus=6,
            n=6,
            seed=7,
            inline=True,
        )
        assert payload["format"] == "repro-gateway-bench/1"
        assert payload["disagreements"] == 0
        assert payload["route_mismatches"] == 0
        assert payload["errors"] == 0
        assert payload["completed"] == payload["sent"]
        assert payload["p99_ms"] >= payload["p50_ms"] > 0
        assert len(payload["per_shard"]) == 2
        assert all(s["hits"] > 0 for s in payload["per_shard"])
        assert payload["gateway"]["admitted"] > 0
        assert payload["gateway"]["quota_denied"] == 0
        assert payload["client_pool"]["reused"] > 0


# ---------------------------------------------------------------------------
# closed shard links (regression)
# ---------------------------------------------------------------------------


class TestShardLinkClosed:
    def test_call_after_read_loop_exit_fails_fast(self):
        """Regression: a call into a link whose read loop had exited used
        to write into the dead socket and await a reply that could never
        arrive (hanging forever); it must fail fast with ShardError."""

        async def scenario():
            async def hang_up(reader, writer):
                writer.close()

            server = await asyncio.start_server(hang_up, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            link = ShardLink("127.0.0.1", port)
            await link.connect()
            for _ in range(200):
                if link.closed:
                    break
                await asyncio.sleep(0.01)
            assert link.closed
            loop = asyncio.get_event_loop()
            t0 = loop.time()
            with pytest.raises(ShardError, match="shard connection closed"):
                await asyncio.wait_for(link.call("ping"), 2.0)
            assert loop.time() - t0 < 1.0  # fail-fast, not a timeout
            await link.close()
            server.close()
            await server.wait_closed()

        _run(scenario())

    def test_inflight_call_fails_when_connection_drops(self):
        async def scenario():
            async def read_then_abort(reader, writer):
                await reader.readline()
                writer.transport.abort()

            server = await asyncio.start_server(read_then_abort, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            link = ShardLink("127.0.0.1", port)
            await link.connect()
            with pytest.raises(ShardError, match="shard connection closed"):
                await asyncio.wait_for(link.call("ping"), 2.0)
            assert link.closed
            # every later call fails fast the same way
            with pytest.raises(ShardError, match="shard connection closed"):
                await link.call("ping")
            await link.close()
            server.close()
            await server.wait_closed()

        _run(scenario())


# ---------------------------------------------------------------------------
# consistent-hash ring routing + live resharding
# ---------------------------------------------------------------------------


class TestRingRouting:
    def test_ring_gateway_routes_per_hash_ring(self):
        ring = HashRing(3)

        async def scenario():
            gateway = Gateway(
                shards=3,
                routing="ring",
                shard_factory=_inline_factory(),
                batch_window_ms=0.0,
            )
            async with gateway:
                answers = []
                for req in _requests(6):
                    status, payload, _ = await gateway.handle_solve(req.to_wire())
                    answers.append((req, status, payload))
                stats = await gateway.fleet_stats()
            return answers, stats

        answers, stats = _run(scenario())
        for req, status, payload in answers:
            assert status == 200
            assert payload["shard"] == ring.shard_for(req.canonical_key())
            served = SolveResult.from_wire(payload["result"])
            assert served.value == solve_k_bounded(req.jobs, k=req.k).value
        assert stats["routing"] == "ring"

    def test_rejects_unknown_routing(self):
        with pytest.raises(ValueError):
            Gateway(shards=2, routing="rendezvous")

    def test_reshard_grow_moves_bounded_fraction_and_keeps_answers(self):
        reqs = _requests(8, seed=300)

        async def scenario():
            gateway = Gateway(
                shards=2,
                routing="ring",
                shard_factory=_inline_factory(),
                batch_window_ms=0.0,
            )
            async with gateway:
                before = [await gateway.handle_solve(r.to_wire()) for r in reqs]
                report = await gateway.reshard(3)
                after = [await gateway.handle_solve(r.to_wire()) for r in reqs]
                stats = await gateway.fleet_stats()
            return before, report, after, stats

        before, report, after, stats = _run(scenario())
        assert report["shards"] == 3
        # Consistent hashing: growing 2 -> 3 relocates about 1/3 of the
        # key space, never the ~2/3 mod-N would.
        assert 0.0 < report["moved_fraction"] <= 0.5
        assert report["moved_arcs"] > 0
        assert stats["gateway"]["ring_moves"] == report["moved_arcs"]
        assert len(stats["shards"]) == 3
        ring3 = HashRing(3)
        for req, (s1, p1, _), (s2, p2, _) in zip(reqs, before, after):
            assert s1 == 200 and s2 == 200
            assert p2["shard"] == ring3.shard_for(req.canonical_key())
            assert (
                SolveResult.from_wire(p2["result"]).value
                == SolveResult.from_wire(p1["result"]).value
            )

    def test_reshard_under_mod_reports_no_movement_bound(self):
        reqs = _requests(4, seed=320)

        async def scenario():
            gateway = Gateway(
                shards=2, shard_factory=_inline_factory(), batch_window_ms=0.0
            )
            async with gateway:
                report = await gateway.reshard(3)
                answers = [await gateway.handle_solve(r.to_wire()) for r in reqs]
            return report, answers

        report, answers = _run(scenario())
        assert report["shards"] == 3
        assert report["moved_fraction"] is None  # mod-N gives no bound
        for req, (status, payload, _) in zip(reqs, answers):
            assert status == 200
            assert payload["shard"] == shard_for_key(req.canonical_key(), 3)

    def test_reshard_shrink_keeps_answers(self):
        reqs = _requests(6, seed=340)

        async def scenario():
            gateway = Gateway(
                shards=3,
                routing="ring",
                shard_factory=_inline_factory(),
                batch_window_ms=0.0,
            )
            async with gateway:
                report = await gateway.reshard(2)
                answers = [await gateway.handle_solve(r.to_wire()) for r in reqs]
            return report, answers

        report, answers = _run(scenario())
        assert report["shards"] == 2
        ring2 = HashRing(2)
        for req, (status, payload, _) in zip(reqs, answers):
            assert status == 200
            assert payload["shard"] == ring2.shard_for(req.canonical_key())
            served = SolveResult.from_wire(payload["result"])
            assert served.value == solve_k_bounded(req.jobs, k=req.k).value


# ---------------------------------------------------------------------------
# supervision (inline, deterministic)
# ---------------------------------------------------------------------------


class _MortalShard(InlineShard):
    """Inline shard with a kill switch, standing in for a dead process."""

    def __init__(self, **service_kwargs):
        super().__init__(**service_kwargs)
        self.dead = False

    def is_alive(self):
        return not self.dead

    async def call(self, op, **payload):
        if self.dead:
            raise ShardError("shard connection closed", "ConnectionError")
        return await super().call(op, **payload)


_FAST_SUPERVISOR = dict(
    interval_s=0.05, ping_timeout_s=0.5, backoff_base_s=0.01, backoff_max_s=0.05
)


class TestSupervisor:
    def test_dead_shard_is_detected_restarted_and_counted(self):
        req = _requests(1, seed=400)[0]

        async def scenario():
            gateway = Gateway(
                shards=2,
                shard_factory=lambda index: _MortalShard(workers=1),
                batch_window_ms=0.0,
                supervisor_kwargs=_FAST_SUPERVISOR,
            )
            async with gateway:
                owner = gateway.shard_for(req)
                first = await gateway.handle_solve(req.to_wire())
                victim = gateway._shards[owner]
                victim.dead = True
                for _ in range(200):
                    if gateway.counters["shard_restarts"] >= 1:
                        break
                    await asyncio.sleep(0.02)
                second = await gateway.handle_solve(req.to_wire())
                stats = await gateway.fleet_stats()
                replaced = gateway._shards[owner] is not victim
            return first, second, stats, replaced

        (s1, p1, _), (s2, p2, _), stats, replaced = _run(scenario())
        assert s1 == 200 and s2 == 200
        assert replaced
        assert (
            SolveResult.from_wire(p2["result"]).value
            == SolveResult.from_wire(p1["result"]).value
        )
        assert stats["gateway"]["shard_restarts"] == 1
        incidents = stats["supervisor"]["incidents"]
        assert len(incidents) == 1
        assert incidents[0]["reason"] == "process died"
        assert incidents[0]["recovered"] is True
        assert incidents[0]["recovery_ms"] > 0
        assert stats["down"] == [False, False]

    def test_unrecoverable_shard_yields_503_with_retry_after(self):
        req = _requests(1, seed=420)[0]
        built = []

        async def scenario():
            def factory(index):
                shard = _MortalShard(workers=1)
                built.append(shard)
                if len(built) > 2:
                    shard.dead = True  # every replacement is stillborn
                return shard

            gateway = Gateway(
                shards=2,
                shard_factory=factory,
                batch_window_ms=0.0,
                supervisor_kwargs=dict(_FAST_SUPERVISOR, max_restart_attempts=2),
                failover_retry_s=0.2,
                failover_retry_after_s=2.5,
            )
            async with gateway:
                owner = gateway.shard_for(req)
                gateway._shards[owner].dead = True
                for _ in range(200):
                    if gateway._down[owner]:
                        break
                    await asyncio.sleep(0.02)
                status, payload, headers = await gateway.handle_solve(req.to_wire())
                failovers = gateway.counters["failovers"]
            return status, payload, headers, failovers

        status, payload, headers, failovers = _run(scenario())
        assert status == 503
        assert payload["error"] == "shard restarting"
        assert headers["Retry-After"] == "3"  # ceil(2.5), delta-seconds form
        assert failovers >= 1


# ---------------------------------------------------------------------------
# the keep-alive connection pool
# ---------------------------------------------------------------------------


class TestConnectionPool:
    def test_concurrent_pooled_requests_never_cross(self):
        reqs = _requests(8, seed=440, n=7)
        expected = {
            req.canonical_key(): solve_k_bounded(req.jobs, k=req.k).value
            for req in reqs
        }

        async def scenario():
            gateway = Gateway(
                shards=2, shard_factory=_inline_factory(), batch_window_ms=0.0
            )
            async with gateway:
                pool = ConnectionPool("127.0.0.1", gateway.port, max_idle=4)

                async def client(offset):
                    for step in range(6):
                        req = reqs[(offset + step) % len(reqs)]
                        status, payload, _ = await pool.request(
                            "POST", "/v1/solve", req.to_wire()
                        )
                        assert status == 200
                        served = SolveResult.from_wire(payload["result"])
                        # The response on this socket must belong to this
                        # request — a crossed reply answers with another
                        # instance's value.
                        assert served.value == expected[req.canonical_key()]

                await asyncio.gather(*(client(i) for i in range(6)))
                counts = pool.created, pool.reused
                await pool.close()
            return counts

        created, reused = _run(scenario())
        assert reused > 0  # keep-alive actually reused sockets
        assert created <= 6  # never more connections than concurrent clients

    def test_pool_discards_closed_idle_sockets(self):
        req = _requests(1, seed=460)[0]

        async def scenario():
            gateway = Gateway(
                shards=1, shard_factory=_inline_factory(), batch_window_ms=0.0
            )
            async with gateway:
                pool = ConnectionPool("127.0.0.1", gateway.port)
                first = await pool.request("POST", "/v1/solve", req.to_wire())
                assert len(pool._idle) == 1
                pool._idle[0][1].close()  # the socket dies while idle
                second = await pool.request("POST", "/v1/solve", req.to_wire())
                counts = pool.created, pool.reused
                await pool.close()
            return first[0], second[0], counts

        s1, s2, (created, reused) = _run(scenario())
        assert s1 == 200 and s2 == 200
        assert created == 2  # the dead idle socket was not reused
