"""Tie-breaking determinism: byte-identical outputs, run to run.

The paper's algorithms are full of ties (equal densities, equal ``t``
values at the top-k boundary, equal deadlines), and every tie is broken by
an explicit deterministic rule — smaller node id, smaller job id — so that
a solve is a pure function of its instance.  These tests pin that down at
the byte level:

* the same instance solved twice yields JSON-identical schedules,
* a pickle round-trip of the :class:`JobSet` (fresh objects, fresh hashes,
  fresh dict insertion orders) changes nothing,
* both TM engines — the reference loop below the auto-dispatch threshold
  and the vectorized kernel above it — obey the same tie-break, checked by
  monkeypatching ``_VECTORIZE_MIN_NODES`` to force each engine on the same
  instance, and natively at a ≥ 4096-node forest where dispatch flips on
  its own.
"""

import json
import pickle

import pytest

import repro.core.bas.tm as tm_mod
from repro.core.bas.tm import tm_optimal_bas
from repro.core.combined import schedule_k_bounded
from repro.instances.random_trees import random_forest
from repro.scheduling.io import schedule_to_dict
from repro.scheduling.job import Job, JobSet


def _tie_heavy_jobs(n: int = 9) -> JobSet:
    """An instance saturated with ties: equal values, lengths and windows."""
    jobs = []
    for i in range(n):
        r = (i * 3) % 7
        jobs.append(Job(i, r, r + 8, 2, 5.0))
    return JobSet(jobs)


def _solve_bytes(jobs: JobSet, k: int) -> str:
    return json.dumps(schedule_to_dict(schedule_k_bounded(jobs, k)), sort_keys=True)


@pytest.mark.parametrize("k", [1, 2, 3])
def test_same_instance_solved_twice_is_byte_identical(k):
    jobs = _tie_heavy_jobs()
    assert _solve_bytes(jobs, k) == _solve_bytes(jobs, k)


@pytest.mark.parametrize("k", [1, 2])
def test_pickle_roundtrip_preserves_solution_bytes(k):
    jobs = _tie_heavy_jobs()
    clone = pickle.loads(pickle.dumps(jobs))
    assert clone is not jobs
    assert _solve_bytes(jobs, k) == _solve_bytes(clone, k)


@pytest.mark.parametrize("force_engine", ["loop", "vectorized"])
def test_solve_deterministic_on_both_sides_of_dispatch(monkeypatch, force_engine):
    """TM auto-dispatch: each engine alone must be run-to-run stable."""
    # Threshold 1 forces every forest through the vectorized kernel;
    # a huge threshold forces the reference loop.
    monkeypatch.setattr(
        tm_mod, "_VECTORIZE_MIN_NODES", 1 if force_engine == "vectorized" else 10**9
    )
    jobs = _tie_heavy_jobs()
    first = _solve_bytes(jobs, 2)
    second = _solve_bytes(pickle.loads(pickle.dumps(jobs)), 2)
    assert first == second


def test_engines_agree_on_tie_heavy_solve(monkeypatch):
    """Loop and vectorized dispatch must produce the SAME bytes, not merely
    each be self-consistent — the shared tie-break rule is the contract."""
    jobs = _tie_heavy_jobs()
    monkeypatch.setattr(tm_mod, "_VECTORIZE_MIN_NODES", 10**9)
    via_loop = _solve_bytes(jobs, 2)
    monkeypatch.setattr(tm_mod, "_VECTORIZE_MIN_NODES", 1)
    via_vectorized = _solve_bytes(jobs, 2)
    assert via_loop == via_vectorized


def test_tm_materialisation_deterministic_above_native_threshold():
    """At n >= 4096 the auto-dispatch flips to the vectorized kernel on its
    own; the materialised k-BAS must still be a stable node set."""
    n = 5000
    assert n >= tm_mod._VECTORIZE_MIN_NODES
    forest = random_forest(n, seed=7)
    first = tm_optimal_bas(forest, 2)
    second = tm_optimal_bas(forest, 2)
    assert sorted(first.retained) == sorted(second.retained)
    assert first.value == second.value


def test_tm_materialisation_deterministic_below_threshold():
    forest = random_forest(500, seed=7)
    assert forest.n < tm_mod._VECTORIZE_MIN_NODES
    first = tm_optimal_bas(forest, 2)
    second = tm_optimal_bas(forest, 2)
    assert sorted(first.retained) == sorted(second.retained)


def test_tm_engines_agree_across_threshold_same_forest(monkeypatch):
    """One forest, both engines (forced via the threshold): identical k-BAS."""
    forest = random_forest(800, seed=11)
    monkeypatch.setattr(tm_mod, "_VECTORIZE_MIN_NODES", 10**9)
    via_loop = tm_optimal_bas(forest, 3)
    monkeypatch.setattr(tm_mod, "_VECTORIZE_MIN_NODES", 1)
    via_vectorized = tm_optimal_bas(forest, 3)
    assert sorted(via_loop.retained) == sorted(via_vectorized.retained)
    assert via_loop.value == pytest.approx(via_vectorized.value)