"""Unit tests for laminarity checking and the Figure 1 rearrangement."""

import pytest

from repro.scheduling.edf import edf_schedule
from repro.scheduling.job import make_jobs
from repro.scheduling.laminar import is_laminar, laminarize, laminarize_local
from repro.scheduling.schedule import Schedule
from repro.scheduling.segment import Segment
from repro.scheduling.verify import verify_schedule


@pytest.fixture
def interleaved():
    """Two jobs interleaved a ≺ b ≺ a' ≺ b' — feasible but not laminar."""
    jobs = make_jobs([(0, 10, 4, 2.0), (0, 10, 4, 3.0)])
    sched = Schedule(
        jobs,
        {
            0: [Segment(0, 2), Segment(4, 6)],
            1: [Segment(2, 4), Segment(6, 8)],
        },
    )
    verify_schedule(sched).assert_ok()
    return sched


@pytest.fixture
def nested():
    """B fully inside A's gap — already laminar."""
    jobs = make_jobs([(0, 10, 4), (2, 6, 2)])
    return Schedule(
        jobs,
        {0: [Segment(0, 2), Segment(4, 6)], 1: [Segment(2, 4)]},
    )


class TestIsLaminar:
    def test_detects_interleaving(self, interleaved):
        assert not is_laminar(interleaved)

    def test_accepts_nesting(self, nested):
        assert is_laminar(nested)

    def test_accepts_disjoint_hulls(self):
        jobs = make_jobs([(0, 4, 2), (4, 8, 2)])
        s = Schedule(jobs, {0: [Segment(0, 2)], 1: [Segment(4, 6)]})
        assert is_laminar(s)

    def test_empty_schedule(self):
        assert is_laminar(Schedule(make_jobs([(0, 4, 2)]), {}))

    def test_three_level_nesting(self):
        jobs = make_jobs([(0, 12, 6), (1, 9, 3), (2, 5, 1)])
        s = Schedule(
            jobs,
            {
                0: [Segment(0, 1), Segment(7, 12)],
                1: [Segment(1, 2), Segment(5, 7)],
                2: [Segment(2, 3)],
            },
        )
        # Volumes wrong on purpose? no: 0 -> 6 units, 1 -> 3, 2 -> 1. Check.
        verify_schedule(s).assert_ok()
        assert is_laminar(s)


class TestLaminarizeEdf:
    def test_fixes_interleaving(self, interleaved):
        out = laminarize(interleaved)
        assert is_laminar(out)
        verify_schedule(out).assert_ok()

    def test_preserves_value_and_jobs(self, interleaved):
        out = laminarize(interleaved)
        assert out.value == pytest.approx(interleaved.value)
        assert out.scheduled_ids == interleaved.scheduled_ids

    def test_noop_on_laminar(self, nested):
        out = laminarize(nested)
        assert is_laminar(out)
        assert out.value == nested.value


class TestLaminarizeLocal:
    def test_fixes_interleaving(self, interleaved):
        out = laminarize_local(interleaved)
        assert is_laminar(out)
        verify_schedule(out).assert_ok()
        assert out.value == pytest.approx(interleaved.value)

    def test_work_conserving_exchange(self, interleaved):
        # The exchange uses exactly the union of the two jobs' slots.
        before = {seg for seg, _ in interleaved.all_segments()}
        out = laminarize_local(interleaved)
        after_total = sum(s.length for segs in (out[i] for i in out.scheduled_ids) for s in segs)
        assert after_total == pytest.approx(sum(s.length for s in before))

    def test_three_way_interleaving(self):
        jobs = make_jobs([(0, 20, 6), (0, 20, 4), (0, 20, 4)])
        s = Schedule(
            jobs,
            {
                0: [Segment(0, 2), Segment(6, 8), Segment(12, 14)],
                1: [Segment(2, 4), Segment(8, 10)],
                2: [Segment(4, 6), Segment(10, 12)],
            },
        )
        verify_schedule(s).assert_ok()
        out = laminarize_local(s)
        assert is_laminar(out)
        verify_schedule(out).assert_ok()
        assert out.value == pytest.approx(s.value)

    def test_noop_on_laminar(self, nested):
        out = laminarize_local(nested)
        assert out.value == nested.value
        assert is_laminar(out)


class TestAgreement:
    def test_both_paths_feasible_and_laminar(self, simple_jobs):
        base = edf_schedule(simple_jobs).schedule
        for fn in (laminarize, laminarize_local):
            out = fn(base)
            assert is_laminar(out)
            verify_schedule(out).assert_ok()
            assert out.value == pytest.approx(base.value)
