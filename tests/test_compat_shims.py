"""Regression tests for the PR-2 keyword-only deprecation shims.

Every solver entry point that went keyword-only keeps its legacy
positional call form for one deprecation cycle.  These tests pin the
contract of that cycle:

* the positional form emits ``DeprecationWarning`` **exactly once** per
  call (not zero, not per-machine/per-iteration);
* the positional and keyword forms return *identical* results — the shim
  may only translate the spelling, never change the computation;
* the keyword form stays silent;
* conflicting spellings raise ``TypeError``.
"""

import json
import warnings

import pytest

from repro.core.lsa import lsa, lsa_cs
from repro.core.multimachine import (
    iterated_assignment,
    multimachine_k_bounded,
    multimachine_nonpreemptive,
    multimachine_opt_infty,
    reduce_multimachine_schedule,
)
from repro.scheduling.edf import edf_accept_max_subset
from repro.scheduling.exact import k_feasible_subset_small, opt_k_exact_small
from repro.scheduling.io import schedule_to_dict
from repro.scheduling.job import Job, JobSet


@pytest.fixture
def jobs():
    return JobSet(
        [
            Job(0, 0, 10, 3, 6.0),
            Job(1, 1, 6, 2, 5.0),
            Job(2, 2, 12, 4, 4.0),
            Job(3, 0, 5, 2, 3.0),
            Job(4, 4, 16, 3, 7.0),
        ]
    )


@pytest.fixture
def lax_jobs():
    # λ >= 4 for every job: lax for every k <= 3 the suite exercises.
    return JobSet(
        [
            Job(0, 0, 12, 3, 6.0),
            Job(1, 2, 14, 2, 5.0),
            Job(2, 1, 21, 4, 4.0),
        ]
    )


def _snap(obj):
    """Canonical byte-comparable form of a schedule-like result."""
    if hasattr(obj, "machines"):  # MultiMachineSchedule
        return json.dumps(
            [schedule_to_dict(m) for m in obj.machines], sort_keys=True
        )
    if obj is None:
        return None
    return json.dumps(schedule_to_dict(obj), sort_keys=True)


def _call_positional_once(fn, *call_args, **call_kwargs):
    """Invoke and return (result, deprecation-warnings-list)."""
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        result = fn(*call_args, **call_kwargs)
    return result, [w for w in caught if issubclass(w.category, DeprecationWarning)]


# One row per migrated entry point: (label, positional call, keyword call).
CASES = [
    (
        "k_feasible_subset_small",
        lambda js, _lx: k_feasible_subset_small(js, 2),
        lambda js, _lx: k_feasible_subset_small(js, k=2),
    ),
    (
        "opt_k_exact_small",
        lambda js, _lx: opt_k_exact_small(js, 1, max_slots=20),
        lambda js, _lx: opt_k_exact_small(js, k=1, max_slots=20),
    ),
    (
        "lsa",
        lambda _js, lx: lsa(lx, 2),
        lambda _js, lx: lsa(lx, k=2),
    ),
    (
        "lsa_cs",
        lambda _js, lx: lsa_cs(lx, 2),
        lambda _js, lx: lsa_cs(lx, k=2),
    ),
    (
        "multimachine_k_bounded",
        lambda js, _lx: multimachine_k_bounded(js, 2, 2),
        lambda js, _lx: multimachine_k_bounded(js, k=2, machines=2),
    ),
    (
        "multimachine_nonpreemptive",
        lambda js, _lx: multimachine_nonpreemptive(js, 2),
        lambda js, _lx: multimachine_nonpreemptive(js, machines=2),
    ),
    (
        "multimachine_opt_infty",
        lambda js, _lx: multimachine_opt_infty(js, 2),
        lambda js, _lx: multimachine_opt_infty(js, machines=2),
    ),
    (
        "iterated_assignment",
        lambda js, _lx: iterated_assignment(js, 2, edf_accept_max_subset),
        lambda js, _lx: iterated_assignment(
            js, edf_accept_max_subset, machines=2
        ),
    ),
    (
        "reduce_multimachine_schedule",
        lambda js, _lx: reduce_multimachine_schedule(
            multimachine_opt_infty(js, machines=2), 1
        ),
        lambda js, _lx: reduce_multimachine_schedule(
            multimachine_opt_infty(js, machines=2), k=1
        ),
    ),
]


@pytest.mark.parametrize("label,positional,keyword", CASES, ids=[c[0] for c in CASES])
def test_positional_warns_exactly_once(label, positional, keyword, jobs, lax_jobs):
    _, deprecations = _call_positional_once(positional, jobs, lax_jobs)
    assert len(deprecations) == 1, (
        f"{label}: positional call emitted {len(deprecations)} "
        f"DeprecationWarnings, want exactly 1"
    )
    assert label in str(deprecations[0].message)


@pytest.mark.parametrize("label,positional,keyword", CASES, ids=[c[0] for c in CASES])
def test_keyword_form_is_silent(label, positional, keyword, jobs, lax_jobs):
    _, deprecations = _call_positional_once(keyword, jobs, lax_jobs)
    assert deprecations == [], f"{label}: keyword call warned: {deprecations}"


@pytest.mark.parametrize("label,positional,keyword", CASES, ids=[c[0] for c in CASES])
def test_positional_and_keyword_results_identical(
    label, positional, keyword, jobs, lax_jobs
):
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        old = positional(jobs, lax_jobs)
        new = keyword(jobs, lax_jobs)
    assert _snap(old) == _snap(new), f"{label}: positional and keyword results differ"


def test_conflicting_spellings_raise(jobs):
    with pytest.raises(TypeError):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            opt_k_exact_small(jobs, 1, k=1)
    with pytest.raises(TypeError):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            multimachine_k_bounded(jobs, 1, k=1)


def test_missing_required_keyword_raises(jobs):
    with pytest.raises(TypeError):
        opt_k_exact_small(jobs)
    with pytest.raises(TypeError):
        multimachine_k_bounded(jobs)

# ---------------------------------------------------------------------------
# PR-7 shims: the pre-SolveRequest SolverService spellings
# ---------------------------------------------------------------------------


@pytest.fixture
def service():
    from repro.serve import SolverService

    with SolverService(workers=1) as svc:
        yield svc


SERVICE_CASES = [
    (
        "SolverService.submit",
        lambda svc, js: svc.submit(js, 1).result(timeout=60),
        lambda svc, js: svc.submit(
            __import__("repro.api", fromlist=["SolveRequest"]).SolveRequest(jobs=js, k=1)
        ).result(timeout=60),
    ),
    (
        "SolverService.solve",
        lambda svc, js: svc.solve(js, 1, timeout=60),
        lambda svc, js: svc.solve(
            __import__("repro.api", fromlist=["SolveRequest"]).SolveRequest(jobs=js, k=1),
            timeout=60,
        ),
    ),
    (
        "SolverService.submit_batch",
        lambda svc, js: [f.result(timeout=60) for f in svc.submit_batch([(js, 1), (js, 2)])],
        lambda svc, js: [
            f.result(timeout=60)
            for f in svc.submit_batch(
                [
                    __import__("repro.api", fromlist=["SolveRequest"]).SolveRequest(jobs=js, k=1),
                    __import__("repro.api", fromlist=["SolveRequest"]).SolveRequest(jobs=js, k=2),
                ]
            )
        ],
    ),
]


@pytest.mark.parametrize(
    "label,legacy,request_form", SERVICE_CASES, ids=[c[0] for c in SERVICE_CASES]
)
def test_service_legacy_spelling_warns_exactly_once(label, legacy, request_form, service, jobs):
    _, deprecations = _call_positional_once(legacy, service, jobs)
    assert len(deprecations) == 1, (
        f"{label}: legacy call emitted {len(deprecations)} "
        f"DeprecationWarnings, want exactly 1"
    )
    assert label in str(deprecations[0].message)
    assert "SolveRequest" in str(deprecations[0].message)


@pytest.mark.parametrize(
    "label,legacy,request_form", SERVICE_CASES, ids=[c[0] for c in SERVICE_CASES]
)
def test_service_request_form_is_silent(label, legacy, request_form, service, jobs):
    _, deprecations = _call_positional_once(request_form, service, jobs)
    assert deprecations == [], f"{label}: SolveRequest call warned: {deprecations}"


@pytest.mark.parametrize(
    "label,legacy,request_form", SERVICE_CASES, ids=[c[0] for c in SERVICE_CASES]
)
def test_service_legacy_and_request_results_identical(
    label, legacy, request_form, jobs
):
    from repro.serve import SolverService

    def values(out):
        return [r.value for r in out] if isinstance(out, list) else out.value

    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        with SolverService(workers=1) as old_svc:
            old = legacy(old_svc, jobs)
        with SolverService(workers=1) as new_svc:
            new = request_form(new_svc, jobs)
    assert values(old) == values(new), f"{label}: legacy and request results differ"


def test_service_legacy_warns_per_call_not_once_ever(service, jobs):
    # Two legacy calls -> two warnings: the cycle warns per call, so a
    # long-running service keeps nudging every un-migrated call site.
    _, first = _call_positional_once(lambda: service.solve(jobs, 1, timeout=60))
    _, second = _call_positional_once(lambda: service.solve(jobs, 1, timeout=60))
    assert len(first) == 1 and len(second) == 1
