"""Tests for the periodic task model, UUniFast, and hyperperiod unrolling."""

import math

import pytest

from repro.instances.periodic import (
    PeriodicTask,
    hyperperiod,
    random_task_set,
    total_utilization,
    unroll,
    uunifast,
)
from repro.scheduling.edf import edf_feasible


class TestPeriodicTask:
    def test_valid(self):
        t = PeriodicTask(0, 20, 5, 15, 2.0)
        assert t.utilization == pytest.approx(0.25)
        assert t.laxity == pytest.approx(3.0)

    def test_rejects_wcet_over_deadline(self):
        with pytest.raises(ValueError):
            PeriodicTask(0, 20, 16, 15)

    def test_rejects_deadline_over_period(self):
        with pytest.raises(ValueError):
            PeriodicTask(0, 20, 5, 25)

    def test_rejects_zero_wcet(self):
        with pytest.raises(ValueError):
            PeriodicTask(0, 20, 0, 15)


class TestUUniFast:
    def test_sums_to_target(self):
        for n, U in [(1, 0.5), (4, 0.9), (10, 2.5)]:
            utils = uunifast(n, U, seed=0)
            assert len(utils) == n
            assert sum(utils) == pytest.approx(U)

    def test_all_positive(self):
        utils = uunifast(8, 0.95, seed=1)
        assert all(u > 0 for u in utils)

    def test_deterministic(self):
        assert uunifast(5, 0.7, seed=2) == uunifast(5, 0.7, seed=2)

    def test_validation(self):
        with pytest.raises(ValueError):
            uunifast(0, 0.5)
        with pytest.raises(ValueError):
            uunifast(3, 0)


class TestRandomTaskSet:
    def test_utilization_near_target(self):
        tasks = random_task_set(8, 0.8, seed=3)
        # rounding WCETs distorts the target slightly
        assert total_utilization(tasks) == pytest.approx(0.8, abs=0.2)

    def test_constrained_deadlines(self):
        tasks = random_task_set(6, 0.9, deadline_fraction=0.7, seed=4)
        for t in tasks:
            assert t.wcet <= t.relative_deadline <= t.period

    def test_deadline_fraction_validation(self):
        with pytest.raises(ValueError):
            random_task_set(3, 0.5, deadline_fraction=0.0)


class TestHyperperiod:
    def test_lcm(self):
        tasks = [
            PeriodicTask(0, 4, 1, 4),
            PeriodicTask(1, 6, 1, 6),
        ]
        assert hyperperiod(tasks) == 12

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            hyperperiod([])


class TestUnroll:
    def test_job_count(self):
        tasks = [PeriodicTask(0, 10, 2, 10), PeriodicTask(1, 20, 3, 20)]
        jobs = unroll(tasks)  # hyperperiod 20
        assert jobs.n == 2 + 1

    def test_windows_follow_task_parameters(self):
        tasks = [PeriodicTask(0, 10, 2, 7)]
        jobs = unroll(tasks, horizon=30)
        releases = sorted(j.release for j in jobs)
        assert releases == [0, 10, 20]
        for j in jobs:
            assert j.deadline - j.release == 7
            assert j.length == 2

    def test_no_truncated_windows(self):
        tasks = [PeriodicTask(0, 10, 2, 8)]
        jobs = unroll(tasks, horizon=25)
        # Third release at 20 has deadline 28 > 25: excluded.
        assert jobs.n == 2

    def test_low_utilization_feasible(self):
        tasks = random_task_set(5, 0.6, seed=5)
        assert edf_feasible(unroll(tasks))

    def test_overload_infeasible(self):
        tasks = random_task_set(6, 1.8, seed=6)
        assert not edf_feasible(unroll(tasks))

    def test_values_carried(self):
        tasks = [PeriodicTask(0, 10, 2, 10, value=7.5)]
        jobs = unroll(tasks)
        assert all(j.value == 7.5 for j in jobs)

    def test_horizon_validation(self):
        with pytest.raises(ValueError):
            unroll([PeriodicTask(0, 10, 2, 10)], horizon=0)
