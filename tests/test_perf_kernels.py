"""Equivalence tests gating the performance layer.

Every fast path introduced by the performance work is checked against its
reference implementation here:

* ``tm_values_vectorized`` against the ``tm_values`` loop — exactly for
  integer/``Fraction`` forests (including the Appendix-A layered family),
  up to summation-order ulps for float forests;
* ``run_sweep(workers=N)`` against serial execution — bit-identical, the
  per-cell RNG-stream contract;
* ``edf_feasible_cached`` against ``edf_feasible``, and the cached
  branch-and-bound against its known optimum;
* the CSR/level numpy layout against the per-node ``children()``/``depths``
  views it mirrors.
"""

import math
from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.sweep import Sweep, run_sweep
from repro.core.bas.forest import Forest
from repro.core.bas.tm import (
    _VECTORIZE_MIN_NODES,
    tm_optimal_bas,
    tm_optimal_value,
    tm_values,
    tm_values_batched,
    tm_values_vectorized,
)
from repro.core.bas.verify import verify_bas
from repro.instances.lower_bounds import appendix_a_forest
from repro.instances.random_trees import random_forest
from repro.utils.rng import spawn_rngs


from tests.strategies import forest_batches, int_forests


class TestVectorizedTm:
    @given(int_forests(), st.integers(min_value=1, max_value=5))
    @settings(max_examples=60, deadline=None)
    def test_matches_reference_on_random_integer_forests(self, f, k):
        assert tm_values_vectorized(f, k) == tm_values(f, k)

    @pytest.mark.parametrize("K,L", [(2, 1), (2, 4), (4, 3), (6, 2)])
    @pytest.mark.parametrize("scale", [True, False])
    def test_matches_reference_on_appendix_a(self, K, L, scale):
        f = appendix_a_forest(K, L, scale=scale)
        for k in (1, 2, K):
            assert tm_values_vectorized(f, k) == tm_values(f, k)

    def test_fraction_values_stay_exact(self):
        f = Forest([-1, 0, 0, 1, 1, 2], [Fraction(1, 3)] * 6)
        t, m = tm_values_vectorized(f, 1)
        assert all(isinstance(x, (Fraction, int)) for x in t + m)
        assert (t, m) == tm_values(f, 1)

    @pytest.mark.parametrize("shape", ["attachment", "preferential", "mixed"])
    def test_float_forests_agree_to_ulps(self, shape):
        for seed in range(3):
            f = random_forest(300, trees=2, shape=shape, seed=seed)
            for k in (1, 2, 4):
                t1, m1 = tm_values(f, k)
                t2, m2 = tm_values_vectorized(f, k)
                np.testing.assert_allclose(t1, t2, rtol=1e-12)
                np.testing.assert_allclose(m1, m2, rtol=1e-12)

    @pytest.mark.parametrize(
        "f",
        [
            Forest.star(200),
            Forest.path(200),
            Forest.complete(3, 4),
            Forest([-1], [5]),
            Forest([-1, -1, -1], [1, 2, 3]),  # forest of isolated roots
        ],
    )
    def test_edge_shapes(self, f):
        for k in (1, 2, 7):
            assert tm_values_vectorized(f, k) == tm_values(f, k)

    def test_k_zero_rejected(self):
        with pytest.raises(ValueError):
            tm_values_vectorized(Forest([-1], [1]), 0)

    def test_auto_dispatch_large_forest_is_still_optimal(self):
        # Above the crossover tm_optimal_bas runs on the vectorized t/m;
        # the produced BAS must still verify and carry the value the DP
        # promises.
        n = _VECTORIZE_MIN_NODES + 500
        f = random_forest(n, value_model="unit", seed=11)
        bas = tm_optimal_bas(f, 2)
        verify_bas(bas, 2).assert_ok()
        assert bas.value == tm_optimal_value(f, 2)
        t, m = tm_values(f, 2)  # reference loop
        assert bas.value == sum(max(t[r], m[r]) for r in f.roots)


class TestBatchedTm:
    """The cross-instance stacked kernel against its per-forest reference."""

    @given(forest_batches(), st.integers(min_value=1, max_value=4))
    @settings(max_examples=50, deadline=None)
    def test_matches_per_forest_vectorized(self, batch, k):
        # Integer forests: the stacked sweep must be bit-exact per forest.
        assert tm_values_batched(batch, k) == [
            tm_values_vectorized(f, k) for f in batch
        ]

    def test_mixed_shapes_float_agree_to_ulps(self):
        batch = [
            random_forest(200, trees=2, shape=shape, seed=seed)
            for seed, shape in enumerate(("attachment", "preferential", "mixed"))
        ]
        for k in (1, 3):
            for (t_b, m_b), f in zip(tm_values_batched(batch, k), batch):
                t_r, m_r = tm_values_vectorized(f, k)
                np.testing.assert_allclose(t_b, t_r, rtol=1e-12)
                np.testing.assert_allclose(m_b, m_r, rtol=1e-12)

    def test_empty_batch_and_k_zero(self):
        assert tm_values_batched([], 2) == []
        with pytest.raises(ValueError):
            tm_values_batched([Forest([-1], [1])], 0)


# ---------------------------------------------------------------------------
# parallel sweep engine
# ---------------------------------------------------------------------------


def _metric_cell(rng, n: int, k: int = 1) -> dict:
    """Module-level cell (picklable) exercising the rng stream directly."""
    draws = rng.random(int(n))
    return {"mean": float(draws.mean()), "k_scaled": float(k * draws.sum())}


class TestParallelSweep:
    def test_workers_bit_identical_to_serial(self):
        sweep = Sweep(axes={"n": [50, 200], "k": [1, 2, 3]}, repeats=3)
        serial = run_sweep(sweep, _metric_cell, seed=123, workers=1)
        for workers in (2, 4):
            parallel = run_sweep(sweep, _metric_cell, seed=123, workers=workers)
            assert parallel == serial  # bit-identical floats, same order

    def test_workers_bit_identical_on_forest_cell(self):
        from repro.analysis.config import CELL_REGISTRY

        cell = CELL_REGISTRY["bas_loss_random"]
        sweep = Sweep(axes={"n": [60, 120], "k": [1, 2], "shape": ["attachment"]}, repeats=2)
        serial = run_sweep(sweep, cell, seed=5, workers=1)
        parallel = run_sweep(sweep, cell, seed=5, workers=3)
        assert parallel == serial

    def test_explicit_serial_executor_ignores_workers(self):
        sweep = Sweep(axes={"n": [10]}, repeats=2)
        a = run_sweep(sweep, _metric_cell, seed=0, workers=4, executor="serial")
        b = run_sweep(sweep, _metric_cell, seed=0)
        assert a == b

    def test_rng_streams_match_spawn_contract(self):
        # Cell i, repeat r must see stream i*repeats + r of spawn_rngs(seed).
        sweep = Sweep(axes={"n": [3, 4]}, repeats=2)
        results = run_sweep(sweep, _metric_cell, seed=9, workers=2)
        rngs = spawn_rngs(9, 4)
        expected_first = float(rngs[0].random(3).mean())
        expected_second = float(rngs[2].random(4).mean())
        assert math.isclose(
            results[0].metrics["mean"] * 2,
            expected_first + float(rngs[1].random(3).mean()),
            rel_tol=1e-12,
        )
        assert results[1].metrics["mean"] * 2 == pytest.approx(
            expected_second + float(rngs[3].random(4).mean()), rel=1e-12
        )

    def test_invalid_arguments(self):
        sweep = Sweep(axes={"n": [1]})
        with pytest.raises(ValueError):
            run_sweep(sweep, _metric_cell, workers=0)
        with pytest.raises(ValueError):
            run_sweep(sweep, _metric_cell, executor="threads")


# ---------------------------------------------------------------------------
# feasibility cache
# ---------------------------------------------------------------------------


class TestFeasibilityCache:
    def test_cached_agrees_with_reference(self):
        from repro.instances.random_jobs import random_jobs
        from repro.scheduling.edf import edf_feasible, edf_feasible_cached

        edf_feasible_cached.cache_clear()
        for seed in range(8):
            jobs = random_jobs(
                10, horizon=9.0, length_range=(1.0, 4.0), laxity_range=(1.0, 2.0),
                seed=seed,
            )
            assert edf_feasible_cached(jobs) == edf_feasible(jobs)
            # Second query must hit the cache, same answer.
            assert edf_feasible_cached(jobs) == edf_feasible(jobs)
        assert edf_feasible_cached.cache_info().hits >= 8

    def test_key_ignores_ids_and_values(self):
        from repro.scheduling.edf import edf_feasible_cached
        from repro.scheduling.job import Job, JobSet

        edf_feasible_cached.cache_clear()
        a = JobSet([Job(0, 0, 4, 2, 1.0), Job(1, 1, 6, 3, 1.0)])
        b = JobSet([Job(7, 1, 6, 3, 9.0), Job(3, 0, 4, 2, 2.5)])
        assert edf_feasible_cached(a) == edf_feasible_cached(b)
        assert edf_feasible_cached.cache_info().misses == 1
        assert edf_feasible_cached.cache_info().hits == 1

    def test_opt_infty_exact_unchanged_by_cache(self):
        from repro.instances.random_jobs import random_jobs
        from repro.scheduling.edf import edf_feasible_cached
        from repro.scheduling.exact import opt_infty_exact

        for seed in (1, 4):
            jobs = random_jobs(
                12, horizon=10.0, length_range=(1.0, 5.0), laxity_range=(1.0, 2.5),
                seed=seed,
            )
            edf_feasible_cached.cache_clear()
            cold = opt_infty_exact(jobs)
            warm = opt_infty_exact(jobs)  # fully cached second run
            assert warm.value == cold.value
            assert sorted(warm.scheduled_ids) == sorted(cold.scheduled_ids)


# ---------------------------------------------------------------------------
# CSR / level layout
# ---------------------------------------------------------------------------


class TestCsrLayout:
    @pytest.mark.parametrize(
        "f",
        [
            Forest.star(30),
            Forest.path(30),
            Forest.complete(3, 3),
            Forest([-1, -1, 0, 0, 1, 2, 2, 5], [1] * 8),
            random_forest(500, trees=3, seed=2),
        ],
    )
    def test_csr_mirrors_children_lists(self, f):
        topo = f.topo_array
        start = f.children_start
        kids = f.children_index
        assert len(kids) == f.n - len(f.roots)
        for i, v in enumerate(topo.tolist()):
            segment = kids[start[i] : start[i + 1]].tolist()
            assert segment == list(f.children(v))

    def test_levels_partition_matches_depths(self):
        f = random_forest(300, trees=2, seed=8)
        depths = f.depths()
        levels = f.levels()
        assert sorted(v for level in levels for v in level) == list(range(f.n))
        for d, level in enumerate(levels):
            assert all(depths[v] == d for v in level)
        ptr = f.level_ptr
        topo = f.topo_array
        for d, level in enumerate(levels):
            assert topo[ptr[d] : ptr[d + 1]].tolist() == list(level)

    def test_traversal_caches_do_not_alias(self):
        f = Forest.complete(2, 3)
        first = f.postorder()
        first.reverse()  # mutate the returned copy
        assert f.postorder() == list(reversed(f.topological_order()))
        d = f.depths()
        d[0] = 99
        assert f.depths()[0] == 0
