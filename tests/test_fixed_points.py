"""Tests for the fixed-preemption-points scheduler."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.fixed_points import fixed_point_schedule, fixed_point_simulate
from repro.instances.periodic import random_task_set, unroll
from repro.scheduling.edf import edf_feasible
from repro.scheduling.job import Job, JobSet, make_jobs
from repro.scheduling.verify import verify_schedule


class TestSimulator:
    def test_single_job_runs_contiguously(self):
        jobs = make_jobs([(0, 10, 6)])
        s, missed = fixed_point_simulate(jobs, 2)
        assert missed == []
        assert len(s[0]) == 1  # consecutive chunks merge

    def test_chunks_never_preempted(self):
        # An urgent arrival waits for the running chunk to finish.
        jobs = make_jobs([(0, 20, 9), (1, 5, 2)])
        s, missed = fixed_point_simulate(jobs, 2)  # chunks of 3
        assert missed == []
        # Job 1 starts only at t=3 (after job 0's first chunk).
        assert s[1][0].start == 3

    def test_structural_budget(self):
        jobs = make_jobs([(0, 40, 12), (2, 8, 2), (14, 20, 2), (26, 32, 2)])
        for k in (1, 2, 3):
            s, _ = fixed_point_simulate(jobs, k)
            assert s.max_preemptions <= k

    def test_k0_means_en_bloc(self):
        jobs = make_jobs([(0, 20, 9), (1, 5, 2)])
        s, missed = fixed_point_simulate(jobs, 0)
        # The whole of job 0 is one chunk; job 1 waits past its deadline.
        assert missed == [1]

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            fixed_point_simulate(make_jobs([(0, 4, 2)]), -1)

    def test_fraction_chunks_exact(self):
        # Length 7 with k=1: chunks of 7/2 — exact Fractions, no drift.
        jobs = make_jobs([(0, 14, 7)])
        s, missed = fixed_point_simulate(jobs, 1)
        assert missed == []
        total = sum(seg.length for seg in s[0])
        assert total == 7


class TestAdmission:
    @pytest.mark.parametrize("k", [0, 1, 2])
    def test_output_verifies(self, k):
        tasks = random_task_set(5, 1.2, seed=7)
        jobs = unroll(tasks)
        s = fixed_point_schedule(jobs, k)
        verify_schedule(s, k=k).assert_ok()

    def test_feasible_periodic_set_fully_kept(self):
        tasks = random_task_set(5, 0.6, seed=8)
        jobs = unroll(tasks)
        if edf_feasible(jobs):
            s = fixed_point_schedule(jobs, 3)
            # Chunked EDF is weaker than EDF; it may still drop something,
            # but on low utilisation it usually keeps everything.
            assert s.value >= 0.8 * jobs.total_value

    def test_value_order(self):
        jobs = make_jobs([(0, 8, 4, 1.0), (0, 8, 4, 9.0)])
        s = fixed_point_schedule(jobs, 1, order="value")
        assert 1 in s

    def test_unknown_order(self):
        with pytest.raises(ValueError):
            fixed_point_schedule(make_jobs([(0, 4, 2)]), 1, order="x")


@st.composite
def jobsets(draw):
    n = draw(st.integers(min_value=1, max_value=8))
    jobs = []
    for i in range(n):
        r = draw(st.integers(min_value=0, max_value=20))
        p = draw(st.integers(min_value=1, max_value=8))
        slack = draw(st.integers(min_value=0, max_value=10))
        v = draw(st.integers(min_value=1, max_value=20))
        jobs.append(Job(i, r, r + p + slack, p, v))
    return JobSet(jobs)


@given(jobsets(), st.integers(min_value=0, max_value=3))
def test_schedule_always_feasible_within_budget(jobs, k):
    s = fixed_point_schedule(jobs, k)
    verify_schedule(s, k=k).assert_ok()


@given(jobsets(), st.integers(min_value=0, max_value=3))
def test_never_exceeds_total(jobs, k):
    assert fixed_point_schedule(jobs, k).value <= jobs.total_value
