"""Chaos test: SIGKILL a real shard worker under concurrent load.

This is the end-to-end resilience proof the inline supervisor tests in
``tests/test_gateway.py`` cannot give: a genuine forked worker process is
killed via the ``gateway.kill_shard`` fault while clients keep arriving
over real sockets.  The supervisor must detect the death, restart the
shard, and — the only invariant that matters — **no client may receive a
wrong answer**: every 200 is re-checked against a direct solve, every
non-200 must be a clean 503, and the store-backed replacement must serve
a held-out repeat from its re-warmed ``shard-NN`` store.
"""

import asyncio
import tempfile

import pytest

from repro.api import SolveRequest, SolveResult, solve_k_bounded
from repro.gateway import Gateway
from repro.gateway.bench import _http_json
from repro.instances import random_jobs
from repro.utils import faults


def _requests(count, n=8, seed=900, k=1):
    return [
        SolveRequest(jobs=random_jobs(n, seed=seed + i), k=k) for i in range(count)
    ]


#: The supervisor always kills the highest-index healthy shard.
_VICTIM = 1


class TestGatewayChaos:
    def test_sigkill_under_load_recovers_without_wrong_answers(self):
        reqs = _requests(10)
        expected = {
            req.canonical_key(): solve_k_bounded(req.jobs, k=req.k).value
            for req in reqs
        }

        async def scenario(store_dir):
            gateway = Gateway(
                shards=2,
                store_dir=store_dir,
                # prewarm off so the post-restart hold-out provably comes
                # off the shard's disk store (served.store_hit), not a
                # prewarmed LRU.
                service_kwargs={"workers": 1, "prewarm": False},
                batch_window_ms=2.0,
                supervisor_kwargs=dict(
                    interval_s=0.05,
                    ping_timeout_s=0.5,
                    backoff_base_s=0.02,
                    backoff_max_s=0.1,
                ),
            )
            async with gateway:
                host, port = "127.0.0.1", gateway.port
                # Warm every instance: populates shard caches AND the
                # per-shard stores the restarted worker will recover from.
                for req in reqs:
                    status, payload = await _http_json(
                        host, port, "POST", "/v1/solve", req.to_wire()
                    )
                    assert status == 200
                # Hold out one key owned by the victim shard: it must not
                # be requested again until after the restart, so serving
                # it then proves store recovery rather than a re-solve.
                victims = [
                    r for r in reqs if gateway.shard_for(r) == _VICTIM
                ]
                assert victims, "corpus must cover the victim shard"
                hold_out = victims[0]
                load_reqs = [r for r in reqs if r is not hold_out]

                statuses = []
                wrong = []
                stop = asyncio.Event()

                async def client(offset):
                    step = 0
                    while not stop.is_set():
                        req = load_reqs[(offset + step) % len(load_reqs)]
                        step += 1
                        try:
                            status, payload = await _http_json(
                                host, port, "POST", "/v1/solve", req.to_wire()
                            )
                        except (ConnectionError, asyncio.IncompleteReadError):
                            status, payload = -1, {}
                        statuses.append(status)
                        if status == 200:
                            served = SolveResult.from_wire(payload["result"])
                            if served.value != expected[req.canonical_key()]:
                                wrong.append(req.canonical_key())
                        await asyncio.sleep(0.01)

                clients = [asyncio.ensure_future(client(i)) for i in range(4)]
                await asyncio.sleep(0.3)
                with faults.inject("gateway.kill_shard"):
                    # Held through several supervisor sweeps; the fault is
                    # one-shot per arming, so exactly one worker dies.
                    await asyncio.sleep(0.5)
                # Wait for the fleet to heal while load continues.
                # Generous: a replacement fork can wedge on an inherited
                # lock (the parent test process is multi-threaded), and one
                # bounded kill-and-refork cycle costs up to ~10s.
                deadline = asyncio.get_event_loop().time() + 30.0
                while asyncio.get_event_loop().time() < deadline:
                    stats = await gateway.fleet_stats()
                    if (
                        gateway.counters["shard_restarts"] >= 1
                        and not any(stats["down"])
                    ):
                        break
                    await asyncio.sleep(0.05)
                stop.set()
                await asyncio.gather(*clients)

                # The held-out repeat is served by the restarted worker
                # from its re-warmed store — same value, no re-solve.
                status, payload = await _http_json(
                    host, port, "POST", "/v1/solve", hold_out.to_wire()
                )
                assert status == 200
                served = SolveResult.from_wire(payload["result"])
                assert served.value == expected[hold_out.canonical_key()]
                assert served.metrics.get("served.store_hit")

                stats = await gateway.fleet_stats()
            return statuses, wrong, stats

        with tempfile.TemporaryDirectory(prefix="repro-chaos-") as store_dir:
            statuses, wrong, stats = asyncio.run(scenario(store_dir))

        assert wrong == []  # zero wrong answers, the chaos contract
        assert statuses, "load generator never ran"
        # During the outage the only acceptable degradation is a clean
        # 503 from the failover path — never a raw transport error.
        assert set(statuses) <= {200, 503}
        assert statuses.count(200) > 0
        assert stats["gateway"]["shard_restarts"] == 1
        incidents = stats["supervisor"]["incidents"]
        assert len(incidents) == 1
        assert incidents[0]["shard"] == _VICTIM
        assert incidents[0]["recovered"] is True
        assert incidents[0]["recovery_ms"] > 0
        assert stats["down"] == [False, False]
        kills = stats["supervisor"]["chaos_actions"]
        assert kills == [{"fault": "gateway.kill_shard", "shard": _VICTIM}]

    def test_drop_link_is_detected_and_healed(self):
        req = _requests(1, seed=950)[0]

        async def scenario():
            gateway = Gateway(
                shards=2,
                service_kwargs={"workers": 1},
                batch_window_ms=0.0,
                supervisor_kwargs=dict(
                    interval_s=0.05,
                    ping_timeout_s=0.5,
                    backoff_base_s=0.02,
                    backoff_max_s=0.1,
                ),
            )
            async with gateway:
                host, port = "127.0.0.1", gateway.port
                status, first = await _http_json(
                    host, port, "POST", "/v1/solve", req.to_wire()
                )
                assert status == 200
                with faults.inject("gateway.drop_link"):
                    await asyncio.sleep(0.3)
                # Generous: a replacement fork can wedge on an inherited
                # lock (the parent test process is multi-threaded), and one
                # bounded kill-and-refork cycle costs up to ~10s.
                deadline = asyncio.get_event_loop().time() + 30.0
                while asyncio.get_event_loop().time() < deadline:
                    stats = await gateway.fleet_stats()
                    if (
                        gateway.counters["shard_restarts"] >= 1
                        and not any(stats["down"])
                    ):
                        break
                    await asyncio.sleep(0.05)
                status, second = await _http_json(
                    host, port, "POST", "/v1/solve", req.to_wire()
                )
                stats = await gateway.fleet_stats()
            return first, (status, second), stats

        first, (status, second), stats = asyncio.run(scenario())
        assert status == 200
        assert (
            SolveResult.from_wire(second["result"]).value
            == SolveResult.from_wire(first["result"]).value
        )
        assert stats["gateway"]["shard_restarts"] >= 1
        assert stats["supervisor"]["incidents"]
        assert stats["down"] == [False, False]

    def test_slow_ping_declares_wedged_shard_down(self):
        async def scenario():
            gateway = Gateway(
                shards=1,
                service_kwargs={"workers": 1},
                batch_window_ms=0.0,
                supervisor_kwargs=dict(
                    interval_s=0.05,
                    ping_timeout_s=0.1,
                    max_ping_failures=2,
                    backoff_base_s=0.02,
                    backoff_max_s=0.1,
                ),
            )
            async with gateway:
                with faults.inject("gateway.slow_ping"):
                    deadline = asyncio.get_event_loop().time() + 10.0
                    while asyncio.get_event_loop().time() < deadline:
                        if gateway.supervisor.incidents:
                            break
                        await asyncio.sleep(0.05)
                # Fault disarmed: probes answer promptly again, so the
                # restart (or the next one) completes and the fleet heals.
                # Generous: a replacement fork can wedge on an inherited
                # lock (the parent test process is multi-threaded), and one
                # bounded kill-and-refork cycle costs up to ~10s.
                deadline = asyncio.get_event_loop().time() + 30.0
                while asyncio.get_event_loop().time() < deadline:
                    stats = await gateway.fleet_stats()
                    if gateway.counters["shard_restarts"] >= 1 and not any(
                        stats["down"]
                    ):
                        break
                    await asyncio.sleep(0.05)
                stats = await gateway.fleet_stats()
            return stats

        stats = asyncio.run(scenario())
        incidents = stats["supervisor"]["incidents"]
        assert incidents
        assert "ping timeouts" in incidents[0]["reason"]
        assert stats["gateway"]["shard_restarts"] >= 1
        assert stats["down"] == [False]
