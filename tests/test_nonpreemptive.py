"""Unit tests for the k = 0 algorithms (Section 5)."""

import pytest

from repro.core.nonpreemptive import (
    nonpreemptive_combined,
    nonpreemptive_lsa,
    nonpreemptive_lsa_cs,
)
from repro.instances.lower_bounds import geometric_chain
from repro.instances.random_jobs import random_jobs
from repro.scheduling.edf import edf_feasible
from repro.scheduling.job import make_jobs
from repro.scheduling.segment import Segment
from repro.scheduling.verify import verify_schedule
from repro.utils.numeric import log_base


class TestEnBlocLsa:
    def test_single_piece_placement(self):
        jobs = make_jobs([(0, 10, 4)])
        s = nonpreemptive_lsa(jobs)
        assert s[0] == (Segment(0, 4),)
        assert s.max_preemptions == 0

    def test_never_preempts(self):
        jobs = random_jobs(40, laxity_range=(2.0, 5.0), seed=0)
        s = nonpreemptive_lsa(jobs)
        assert s.max_preemptions == 0
        verify_schedule(s, k=0).assert_ok()

    def test_density_priority(self):
        jobs = make_jobs([(0, 6, 4, 1.0), (0, 6, 4, 9.0)])
        s = nonpreemptive_lsa(jobs)
        assert s.scheduled_ids == [1]

    def test_skips_to_later_gap(self):
        # First job blocks [0,4]; second fits after it en bloc.
        jobs = make_jobs([(0, 6, 4, 9.0), (0, 12, 4, 1.0)])
        s = nonpreemptive_lsa(jobs)
        assert s[1] == (Segment(4, 8),)

    def test_value_order_variant(self):
        jobs = random_jobs(20, seed=1)
        s = nonpreemptive_lsa(jobs, order="value")
        verify_schedule(s, k=0).assert_ok()


class TestClassifiedEnBloc:
    def test_feasible(self):
        jobs = random_jobs(40, length_range=(1.0, 64.0), seed=2)
        s = nonpreemptive_lsa_cs(jobs)
        verify_schedule(s, k=0).assert_ok()

    def test_class_ratio_at_most_two(self):
        jobs = random_jobs(30, length_range=(1.0, 100.0), seed=3)
        _, per_class = nonpreemptive_lsa_cs(jobs, return_all_classes=True)
        for c, sched in per_class.items():
            lengths = [jobs[i].length for i in sched.scheduled_ids]
            if len(lengths) >= 2:
                assert max(lengths) / min(lengths) <= 2 + 1e-9

    def test_section5_bound_on_feasible_sets(self):
        for seed in range(4):
            jobs = random_jobs(
                20, horizon=400.0, length_range=(1.0, 32.0),
                laxity_range=(2.0, 5.0), seed=seed,
            )
            s = nonpreemptive_lsa_cs(jobs)
            if edf_feasible(jobs):
                opt = jobs.total_value
                bound = 3 * max(1.0, log_base(jobs.length_ratio, 2))
                assert s.value >= opt / bound - 1e-9

    def test_empty(self):
        assert len(nonpreemptive_lsa_cs(make_jobs([]))) == 0


class TestCombinedK0:
    def test_chain_accepts_exactly_one(self):
        jobs = geometric_chain(7)
        s = nonpreemptive_combined(jobs)
        verify_schedule(s, k=0).assert_ok()
        assert s.value == 1.0

    def test_single_job_fallback_certifies_n_bound(self):
        # One huge-value job that the classified LSA may route around.
        jobs = make_jobs(
            [(0, 4, 4, 100.0), (0, 4, 2, 1.0), (0, 4, 2, 1.0)]
        )
        s = nonpreemptive_combined(jobs)
        assert s.value >= 100.0

    def test_value_at_least_best_single(self):
        for seed in range(3):
            jobs = random_jobs(25, seed=seed)
            s = nonpreemptive_combined(jobs)
            assert s.value >= max(j.value for j in jobs) - 1e-9

    def test_feasible_and_nonpreemptive(self):
        jobs = random_jobs(30, length_range=(1.0, 50.0), seed=9)
        s = nonpreemptive_combined(jobs)
        verify_schedule(s, k=0).assert_ok()

    def test_empty(self):
        assert nonpreemptive_combined(make_jobs([])).value == 0
