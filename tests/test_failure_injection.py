"""Failure injection: the verifiers must catch every class of corruption.

A verifier that silently passes corrupted schedules would invalidate every
experiment in this repository (they all lean on ``verify_schedule`` /
``verify_bas`` instead of trusting algorithm bookkeeping).  These tests
take known-good objects, apply a targeted mutation from each violation
class, and assert the verifier flags it.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.bas.forest import Forest
from repro.core.bas.subforest import SubForest
from repro.core.bas.tm import tm_optimal_bas
from repro.core.bas.verify import verify_bas
from repro.scheduling.edf import edf_accept_max_subset, edf_schedule
from repro.scheduling.job import Job, JobSet, make_jobs
from repro.scheduling.schedule import Schedule
from repro.scheduling.segment import Segment
from repro.scheduling.verify import verify_schedule


@pytest.fixture
def good_schedule():
    jobs = make_jobs([(0, 12, 5, 1.0), (1, 7, 4, 1.0), (3, 9, 3, 1.0), (8, 28, 9, 1.0)])
    sched = edf_schedule(jobs).schedule
    verify_schedule(sched).assert_ok()
    return sched


def mutate(sched: Schedule, job_id: int, new_segments) -> Schedule:
    assignment = {i: list(sched[i]) for i in sched.scheduled_ids}
    assignment[job_id] = new_segments
    return Schedule(sched.jobs, assignment)


class TestScheduleCorruption:
    def test_shift_before_release(self, good_schedule):
        job = good_schedule.jobs[1]  # release 1
        bad = mutate(good_schedule, 1, [Segment(job.release - 1, job.release - 1 + job.length)])
        assert not verify_schedule(bad).feasible

    def test_shift_past_deadline(self, good_schedule):
        job = good_schedule.jobs[2]
        bad = mutate(good_schedule, 2, [Segment(job.deadline - job.length + 1, job.deadline + 1)])
        assert not verify_schedule(bad).feasible

    def test_shrink_volume(self, good_schedule):
        segs = list(good_schedule[3])
        first = segs[0]
        shrunk = [Segment(first.start, first.start + first.length / 2)] + segs[1:]
        bad = mutate(good_schedule, 3, shrunk)
        assert not verify_schedule(bad).feasible

    def test_inflate_volume(self, good_schedule):
        segs = list(good_schedule[3])
        last = segs[-1]
        grown = segs[:-1] + [Segment(last.start, last.end + 1)]
        bad = mutate(good_schedule, 3, grown)
        assert not verify_schedule(bad).feasible

    def test_cross_job_overlap(self, good_schedule):
        # Copy job 0's slot onto job 3 (inside job 3's window? force overlap
        # by stretching job 3's first segment backwards over busy time).
        segs0 = good_schedule[0]
        bad = mutate(
            good_schedule, 3, [Segment(segs0[0].start + 0.5, segs0[0].start + 9.5)]
        )
        rep = verify_schedule(bad)
        assert not rep.feasible

    def test_budget_violation_detected(self, good_schedule):
        # Split job 3's single segment into three pieces inside its window.
        # Job 3 originally runs [12, 21]; re-split it into three pieces in
        # the idle tail of its window (the machine is free after 21).
        pieces = [Segment(12, 15), Segment(16, 19), Segment(21, 24)]
        bad = mutate(good_schedule, 3, pieces)
        assert verify_schedule(bad, k=2).feasible
        assert not verify_schedule(bad, k=1).feasible


@st.composite
def schedules_and_mutations(draw):
    """Random feasible schedule + a random corruption choice."""
    n = draw(st.integers(min_value=2, max_value=6))
    jobs = []
    for i in range(n):
        r = draw(st.integers(min_value=0, max_value=15))
        p = draw(st.integers(min_value=2, max_value=6))
        slack = draw(st.integers(min_value=0, max_value=8))
        jobs.append(Job(i, r, r + p + slack, p, 1.0))
    sched = edf_accept_max_subset(JobSet(jobs))
    victim = draw(st.sampled_from(sorted(sched.scheduled_ids)))
    kind = draw(st.sampled_from(["early", "late", "short"]))
    return sched, victim, kind


@given(schedules_and_mutations())
def test_random_corruptions_always_caught(smk):
    sched, victim, kind = smk
    job = sched.jobs[victim]
    segs = list(sched[victim])
    if kind == "early":
        new = [s.shifted(-(job.release - (-1000))) for s in segs[:1]] + list(segs[1:])
        # shift the first segment far before the release
        new[0] = Segment(job.release - 5, job.release - 5 + segs[0].length)
    elif kind == "late":
        new = list(segs[:-1]) + [Segment(job.deadline + 1, job.deadline + 1 + segs[-1].length)]
    else:  # short: remove a positive chunk of work
        first = segs[0]
        if first.length <= 1:
            new = list(segs[1:]) or [Segment(first.start, first.start + first.length / 2)]
        else:
            new = [Segment(first.start, first.end - 1)] + list(segs[1:])
    assignment = {i: list(sched[i]) for i in sched.scheduled_ids}
    assignment[victim] = new
    bad = Schedule(sched.jobs, assignment)
    assert not verify_schedule(bad).feasible


class TestServeFaultInjection:
    """The ``serve.drop_cache_entry`` fault: a simulated production cache
    wipe.  The service must absorb it as pure cold-solve throughput — same
    answers, zero hits, no errors, no deadlock — and recover the moment the
    fault disarms."""

    def test_fault_is_catalogued(self):
        from repro.utils.faults import KNOWN_FAULTS

        assert "serve.drop_cache_entry" in KNOWN_FAULTS

    def test_cache_wipe_degrades_but_never_crashes(self):
        from repro.api import solve_k_bounded
        from repro.instances import random_jobs
        from repro.serve import SolverService
        from repro.utils import faults

        corpus = [(random_jobs(8, seed=40 + i), 1 + i % 2) for i in range(4)]
        expected = {i: solve_k_bounded(jobs, k).value for i, (jobs, k) in enumerate(corpus)}

        with SolverService(workers=2) as svc:
            with faults.inject("serve.drop_cache_entry"):
                for _round in range(3):
                    for i, (jobs, k) in enumerate(corpus):
                        result = svc.solve(jobs, k, timeout=60)
                        assert result.value == expected[i]
                armed = svc.stats()
            # Fault disarmed: the next pass repopulates and then hits.
            for i, (jobs, k) in enumerate(corpus):
                assert svc.solve(jobs, k, timeout=60).value == expected[i]
            for i, (jobs, k) in enumerate(corpus):
                assert svc.solve(jobs, k, timeout=60).value == expected[i]
            recovered = svc.stats()

        # Armed: every lookup missed (the wipe), nothing failed.
        assert armed["hits"] == 0
        assert armed["misses"] == 12
        assert armed["errors"] == 0 and armed["degraded"] == 0
        # Disarmed: the second post-fault pass was served from cache again.
        assert recovered["hits"] >= 4
        assert recovered["errors"] == 0

    def test_cache_unit_behaviour_under_fault(self):
        from repro.serve import LruCache
        from repro.utils import faults

        cache = LruCache(4)
        cache.put("key", 123)
        with faults.inject("serve.drop_cache_entry"):
            assert cache.get("key") is None  # dropped, reported as a miss
        assert cache.get("key") is None  # entry is gone, not just hidden


class TestBasCorruption:
    @pytest.fixture
    def forest(self):
        return Forest([-1, 0, 0, 1, 1, 2, 2, 3, 3], [5, 4, 4, 3, 3, 2, 2, 1, 1])

    def test_degree_inflation_caught(self, forest):
        bas = tm_optimal_bas(forest, 1)
        # Force-retain every child of a retained node with 2 children.
        retained = set(bas.retained)
        for v in sorted(retained):
            kids = [c for c in forest.children(v)]
            if len(kids) >= 2:
                corrupted = retained | set(kids)
                # only a violation if v retained and both kids retained
                rep = verify_bas(SubForest(forest, corrupted), 1)
                if len([c for c in kids if c in corrupted]) > 1:
                    assert not rep.valid
                    return
        pytest.skip("no inflatable node in this BAS")

    def test_gap_injection_caught(self, forest):
        # Retain a grandchild while dropping its parent under a retained root.
        bad = SubForest(forest, [0, 3])  # 0 -> 1 -> 3 with 1 missing
        assert not verify_bas(bad, 2).valid

    def test_tm_output_immune_to_reverify(self, forest):
        for k in (1, 2):
            verify_bas(tm_optimal_bas(forest, k), k).assert_ok()
