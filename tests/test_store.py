"""The durable result store: format, crash recovery, the service's second
cache tier, restart warmth, maintenance verbs and the CLI surface.

The contracts under test are the ones ``docs/STORE.md`` promises:
bit-exact round-trips through the ``repro-wire/1`` codec, never-crash /
never-stale recovery from torn tails and corrupt lines, solver-version
invalidation, the degraded-result poisoning rule extended to disk, and a
restart that serves previously solved instances from the store without
re-solving.
"""

import json
import os

import pytest

from repro.api import SolveRequest, SolveResult, request_key, solve_k_bounded
from repro.instances import random_integral_jobs, random_jobs
from repro.serve import SolverService
from repro.store import STORE_FORMAT, ResultStore


def _requests(count, n=8, seed=0):
    return [
        SolveRequest(jobs=random_jobs(n, seed=seed + i), k=1 + i % 2)
        for i in range(count)
    ]


def _result_bytes(result: SolveResult) -> str:
    """Wire bytes minus the volatile serving metrics."""
    doc = result.to_wire()
    doc.pop("metrics", None)
    return json.dumps(doc, sort_keys=True)


def _counting_solve(log):
    def fn(jobs, k, *, machines=1, method="auto", **kw):
        log.append(jobs.canonical_key())
        return solve_k_bounded(jobs, k, machines=machines, method=method, **kw)

    return fn


def _segments(root):
    return sorted(
        os.path.join(root, name) for name in os.listdir(root) if name.startswith("seg-")
    )


# ---------------------------------------------------------------------------
# format and the basic mapping surface
# ---------------------------------------------------------------------------


class TestStoreBasics:
    def test_records_are_self_describing_jsonl(self, tmp_path):
        req = _requests(1)[0]
        result = solve_k_bounded(req.jobs, req.k)
        with ResultStore(str(tmp_path / "s")) as store:
            assert store.put(req.key(), result)
        [seg] = _segments(str(tmp_path / "s"))
        [line] = open(seg).read().splitlines()
        record = json.loads(line)
        from repro import __version__

        assert record["format"] == STORE_FORMAT
        assert record["key"] == req.key()
        assert record["solver"] == __version__
        assert record["wire"] == "repro-wire/1"
        assert record["result"]["format"] == "repro-wire/1"

    def test_get_round_trips_bit_exactly(self, tmp_path):
        reqs = _requests(4)
        with ResultStore(str(tmp_path / "s")) as store:
            originals = {}
            for req in reqs:
                result = solve_k_bounded(req.jobs, req.k)
                originals[req.key()] = result
                store.put(req.key(), result)
            assert len(store) == 4
            for key, original in originals.items():
                assert key in store
                stored = store.get(key)
                assert _result_bytes(stored) == _result_bytes(original)
                assert stored.value == original.value
                assert stored.preemptions_used == original.preemptions_used

    def test_duplicate_put_is_a_noop_unless_overwrite(self, tmp_path):
        req = _requests(1)[0]
        result = solve_k_bounded(req.jobs, req.k)
        with ResultStore(str(tmp_path / "s")) as store:
            assert store.put(req.key(), result) is True
            assert store.put(req.key(), result) is False
            assert store.counters["writes"] == 1
            assert store.put(req.key(), result, overwrite=True) is True
            assert len(store) == 1

    def test_degraded_results_are_refused(self, tmp_path):
        req = _requests(1)[0]
        degraded = solve_k_bounded(req.jobs, req.k).with_metrics(
            {"served.degraded": 1.0}
        )
        with ResultStore(str(tmp_path / "s")) as store:
            with pytest.raises(ValueError, match="never persisted"):
                store.put(req.key(), degraded)
            assert len(store) == 0

    def test_put_after_close_raises(self, tmp_path):
        req = _requests(1)[0]
        store = ResultStore(str(tmp_path / "s"))
        store.close()
        with pytest.raises(ValueError, match="closed"):
            store.put(req.key(), solve_k_bounded(req.jobs, req.k))

    def test_segments_roll_at_the_size_bound(self, tmp_path):
        reqs = _requests(6)
        with ResultStore(str(tmp_path / "s"), segment_max_bytes=1) as store:
            for req in reqs:
                store.put(req.key(), solve_k_bounded(req.jobs, req.k))
        assert len(_segments(str(tmp_path / "s"))) >= 6
        with ResultStore(str(tmp_path / "s")) as reopened:
            assert len(reopened) == 6


# ---------------------------------------------------------------------------
# crash recovery: never crash, never serve a stale artifact
# ---------------------------------------------------------------------------


class TestCrashRecovery:
    def _populated(self, root, count=3):
        reqs = _requests(count)
        with ResultStore(root) as store:
            for req in reqs:
                store.put(req.key(), solve_k_bounded(req.jobs, req.k))
        return reqs

    def test_torn_tail_is_healed_by_truncation(self, tmp_path):
        root = str(tmp_path / "s")
        reqs = self._populated(root)
        seg = _segments(root)[-1]
        size_before = os.path.getsize(seg)
        with open(seg, "ab") as fh:
            fh.write(b'{"format": "repro-store/1", "key": "crashed-mid-app')
        with ResultStore(root) as store:
            assert store.counters["recovered_tail"] == 1
            assert len(store) == len(reqs)
            assert os.path.getsize(seg) == size_before  # healed in place
        # The next open sees a clean file: the repair is durable.
        with ResultStore(root) as store:
            assert store.counters["recovered_tail"] == 0
            assert len(store) == len(reqs)

    def test_torn_tail_falls_back_to_cold_solve_in_the_service(self, tmp_path):
        root = str(tmp_path / "s")
        reqs = self._populated(root, count=2)
        victim = _requests(3)[-1]  # never stored
        seg = _segments(root)[-1]
        with open(seg, "ab") as fh:
            fh.write(b'{"torn": ')
        calls = []
        with SolverService(
            workers=1, store_path=root, prewarm=False, solve_fn=_counting_solve(calls)
        ) as svc:
            warm = svc.solve(reqs[0])
            cold = svc.solve(victim)
        assert warm.metrics.get("served.store_hit") == 1.0
        assert len(calls) == 1  # only the never-stored instance solved
        assert cold.value == solve_k_bounded(victim.jobs, victim.k).value

    def test_corrupt_line_is_skipped_not_fatal(self, tmp_path):
        root = str(tmp_path / "s")
        reqs = self._populated(root)
        seg = _segments(root)[-1]
        lines = open(seg, "rb").read().splitlines(keepends=True)
        lines[1] = b"@@@ bit rot, not json @@@\n"
        open(seg, "wb").write(b"".join(lines))
        with ResultStore(root) as store:
            assert store.counters["corrupt"] == 1
            assert len(store) == len(reqs) - 1  # the broken record is a miss
        calls = []
        with SolverService(
            workers=1, store_path=root, prewarm=False, solve_fn=_counting_solve(calls)
        ) as svc:
            results = [svc.solve(req) for req in reqs]
        assert len(calls) == 1  # the corrupted entry cold-solved, the rest hit
        for req, result in zip(reqs, results):
            assert result.value == solve_k_bounded(req.jobs, req.k).value

    def test_solver_version_mismatch_is_invisible_never_stale(self, tmp_path):
        root = str(tmp_path / "s")
        req = _requests(1)[0]
        honest = solve_k_bounded(req.jobs, req.k)
        # A prior solver version stored a *wrong* artifact under this key —
        # the exact situation version invalidation exists for.
        stale = solve_k_bounded(random_jobs(8, seed=999), 2)
        with ResultStore(root, solver_version="0.0.1-old") as old:
            old.put(req.key(), stale)
        with ResultStore(root) as store:
            assert store.counters["version_skipped"] == 1
            assert len(store) == 0
            assert store.get(req.key()) is None
        calls = []
        with SolverService(
            workers=1, store_path=root, solve_fn=_counting_solve(calls)
        ) as svc:
            result = svc.solve(req)
        assert len(calls) == 1  # cold solve, not the stale artifact
        assert result.value == honest.value
        assert "served.store_hit" not in result.metrics

    def test_result_doc_rejected_by_codec_is_a_miss(self, tmp_path):
        root = str(tmp_path / "s")
        req = _requests(1)[0]
        with ResultStore(root) as store:
            store.put(req.key(), solve_k_bounded(req.jobs, req.k))
        seg = _segments(root)[-1]
        record = json.loads(open(seg).read())
        record["result"]["schedule"] = {"not": "a schedule"}
        open(seg, "w").write(json.dumps(record) + "\n")
        with ResultStore(root) as store:
            assert store.get(req.key()) is None  # dropped, counted, no crash
            assert store.counters["corrupt"] == 1


# ---------------------------------------------------------------------------
# the service's second tier and restart warmth
# ---------------------------------------------------------------------------


class TestServiceTier:
    def test_restart_serves_from_store_bit_identically(self, tmp_path):
        root = str(tmp_path / "s")
        reqs = _requests(4)
        with SolverService(workers=2, store_path=root) as svc:
            first = [svc.solve(req) for req in reqs]
            stats = svc.stats()
        assert stats["store_writes"] == len(reqs)
        assert stats["store_misses"] == len(reqs)
        calls = []
        with SolverService(
            workers=2, store_path=root, prewarm=False, solve_fn=_counting_solve(calls)
        ) as restarted:
            second = [restarted.solve(req) for req in reqs]
            stats2 = restarted.stats()
        assert calls == []  # nothing re-solved
        assert stats2["store_hits"] == len(reqs)
        for a, b in zip(first, second):
            assert b.metrics["served.store_hit"] == 1.0
            assert _result_bytes(a) == _result_bytes(b)

    def test_restart_serves_n28_bitset_solve_warm_from_disk(self, tmp_path):
        """An n = 28 ``method="reduction"`` exact solve — the PR 8 bitset
        frontier — survives a service restart as a store hit: the expensive
        branch-and-bound runs once per fleet lifetime, not once per process.
        """
        from repro.scheduling.exact import clear_exact_caches

        root = str(tmp_path / "s")
        jobs = random_integral_jobs(28, seed=828)
        req = SolveRequest(jobs=jobs, k=2, method="reduction")
        clear_exact_caches()
        with SolverService(workers=1, store_path=root) as svc:
            cold = svc.solve(req)
        assert cold.metrics.get("exact.nodes", 0) > 0  # the bitset core ran
        clear_exact_caches()  # a real restart loses the in-process memos too
        calls = []
        with SolverService(
            workers=1, store_path=root, solve_fn=_counting_solve(calls)
        ) as restarted:
            warm = restarted.solve(req)
            stats = restarted.stats()
        assert calls == []
        assert stats["store_prewarmed"] >= 1 and stats["hits"] == 1
        assert warm.method == "reduction"
        assert warm.value == cold.value
        assert _result_bytes(warm) == _result_bytes(cold)

    def test_prewarm_fills_the_lru_so_restart_hits_are_memory_hits(self, tmp_path):
        root = str(tmp_path / "s")
        reqs = _requests(3)
        with SolverService(workers=1, store_path=root) as svc:
            for req in reqs:
                svc.solve(req)
        with SolverService(workers=1, store_path=root) as restarted:
            stats0 = restarted.stats()
            results = [restarted.solve(req) for req in reqs]
            stats = restarted.stats()
        assert stats0["store_prewarmed"] == len(reqs)
        assert stats["hits"] == len(reqs)  # LRU hits, no store reads needed
        assert stats["store_hits"] == 0
        assert all(r.metrics.get("served.hit") == 1.0 for r in results)

    def test_degraded_results_never_reach_the_store(self, tmp_path):
        root = str(tmp_path / "s")
        req = SolveRequest(jobs=random_jobs(10, seed=5), k=1, deadline_ms=1e-6)

        def glacial(jobs, k, *, machines=1, method="auto", **kw):
            import time as _time

            if method != "lsa":
                _time.sleep(0.05)
            return solve_k_bounded(jobs, k, machines=machines, method=method, **kw)

        with SolverService(workers=1, store_path=root, solve_fn=glacial) as svc:
            result = svc.solve(req)
            stats = svc.stats()
        assert result.degraded
        assert stats["store_writes"] == 0
        with ResultStore(root) as store:
            assert len(store) == 0

    def test_batch_path_persists_and_restart_batch_hits_store(self, tmp_path):
        root = str(tmp_path / "s")
        reqs = [SolveRequest(jobs=random_jobs(8, seed=40 + i), k=1) for i in range(4)]
        with SolverService(workers=2, store_path=root) as svc:
            first = svc.solve_batch(reqs)
            stats = svc.stats()
        assert stats["store_writes"] == len(reqs)
        assert all(r.metrics.get("served.batched") == 1.0 for r in first)
        calls = []
        with SolverService(
            workers=2, store_path=root, prewarm=False, solve_fn=_counting_solve(calls)
        ) as restarted:
            second = restarted.solve_batch(reqs)
            stats2 = restarted.stats()
        assert calls == []
        assert stats2["store_hits"] == len(reqs)
        for a, b in zip(first, second):
            assert b.metrics.get("served.store_hit") == 1.0
            assert _result_bytes(a) == _result_bytes(b)

    def test_store_and_store_path_are_mutually_exclusive(self, tmp_path):
        with ResultStore(str(tmp_path / "s")) as store:
            with pytest.raises(TypeError, match="not both"):
                SolverService(store=store, store_path=str(tmp_path / "s"))

    def test_shared_store_object_stays_open_after_shutdown(self, tmp_path):
        req = _requests(1)[0]
        store = ResultStore(str(tmp_path / "s"))
        with SolverService(workers=1, store=store) as svc:
            svc.solve(req)
        # The service does not own a caller-provided store.
        assert store.put("extra", solve_k_bounded(req.jobs, req.k)) in (True, False)
        store.close()


# ---------------------------------------------------------------------------
# maintenance: compact / verify / snapshots
# ---------------------------------------------------------------------------


class TestMaintenance:
    def test_compact_drops_superseded_corrupt_and_mismatched(self, tmp_path):
        root = str(tmp_path / "s")
        reqs = _requests(3)
        with ResultStore(root, solver_version="0.0.1-old") as old:
            old.put("stale-key", solve_k_bounded(reqs[0].jobs, 1))
        with ResultStore(root) as store:
            for req in reqs:
                store.put(req.key(), solve_k_bounded(req.jobs, req.k))
            store.put(reqs[0].key(), solve_k_bounded(reqs[0].jobs, reqs[0].k),
                      overwrite=True)
        with open(_segments(root)[-1], "ab") as fh:
            fh.write(b"junk line\n")
        with ResultStore(root) as store:
            report = store.compact()
            assert report["live"] == 3
        [seg] = _segments(root)
        lines = open(seg).read().splitlines()
        assert len(lines) == 3  # stale version, duplicate and junk all gone
        with ResultStore(root) as clean:
            assert len(clean) == 3
            assert clean.counters["corrupt"] == 0
            assert clean.counters["version_skipped"] == 0

    def test_verify_passes_clean_and_flags_tampering(self, tmp_path):
        root = str(tmp_path / "s")
        reqs = _requests(2)
        with ResultStore(root) as store:
            for req in reqs:
                store.put(req.key(), solve_k_bounded(req.jobs, req.k))
            assert store.verify()["ok"] is True
        seg = _segments(root)[-1]
        lines = open(seg).read().splitlines()
        record = json.loads(lines[0])
        record["result"]["value"] = "1/3"  # silently alter the stored value
        lines[0] = json.dumps(record, sort_keys=True, separators=(",", ":"))
        open(seg, "w").write("\n".join(lines) + "\n")
        with ResultStore(root) as store:
            report = store.verify()
        # The altered value still decodes but the schedule no longer matches
        # it — either codec rejection or a round-trip mismatch must flag it.
        assert report["ok"] is False

    def test_export_import_moves_the_live_set(self, tmp_path):
        root = str(tmp_path / "a")
        reqs = _requests(3)
        with ResultStore(root) as store:
            for req in reqs:
                store.put(req.key(), solve_k_bounded(req.jobs, req.k))
            snap = str(tmp_path / "snap.jsonl")
            assert store.export_snapshot(snap) == 3
        header = json.loads(open(snap).readline())
        assert header["kind"] == "snapshot" and header["entries"] == 3
        with ResultStore(str(tmp_path / "b")) as other:
            report = other.import_snapshot(snap)
            assert report["imported"] == 3 and report["corrupt"] == 0
            assert other.import_snapshot(snap)["duplicates"] == 3
            for req in reqs:
                assert _result_bytes(other.get(req.key())) == _result_bytes(
                    solve_k_bounded(req.jobs, req.k)
                )


# ---------------------------------------------------------------------------
# gateway config and the CLI verbs
# ---------------------------------------------------------------------------


class TestGatewayStoreConfig:
    def test_default_factory_gives_each_shard_its_own_store_path(self, tmp_path):
        from repro.gateway import Gateway

        gw = Gateway(shards=3, store_dir=str(tmp_path / "fleet"))
        paths = [gw._shard_factory(i)._service_kwargs["store_path"] for i in range(3)]
        assert len(set(paths)) == 3
        assert all(p.startswith(str(tmp_path / "fleet")) for p in paths)

    def test_store_dir_with_custom_factory_is_an_error(self, tmp_path):
        from repro.gateway import Gateway, InlineShard

        with pytest.raises(TypeError, match="store_dir"):
            Gateway(
                store_dir=str(tmp_path / "fleet"),
                shard_factory=lambda index: InlineShard(workers=1),
            )

    def test_gateway_restart_over_inline_store_backed_shards(self, tmp_path):
        import asyncio

        from repro.gateway import Gateway, InlineShard

        reqs = _requests(4, seed=70)

        def factory(index):
            return InlineShard(
                workers=1, store_path=str(tmp_path / "fleet" / f"shard-{index:02d}")
            )

        async def drive():
            async with Gateway(shards=2, shard_factory=factory,
                               batch_window_ms=0.0) as gw:
                first = [await gw.handle_solve(r.to_wire()) for r in reqs]
            async with Gateway(shards=2, shard_factory=factory,
                               batch_window_ms=0.0) as gw:
                second = [await gw.handle_solve(r.to_wire()) for r in reqs]
                stats = await gw.fleet_stats()
            return first, second, stats

        first, second, stats = asyncio.run(drive())
        assert all(status == 200 for status, _, _ in first + second)
        for (_, a, _), (_, b, _) in zip(first, second):
            ra, rb = dict(a["result"]), dict(b["result"])
            ra.pop("metrics", None), rb.pop("metrics", None)
            assert json.dumps(ra, sort_keys=True) == json.dumps(rb, sort_keys=True)
        # Restarted shards answered warm: prewarmed LRU hits, zero solves.
        fleet = stats["fleet"]
        assert fleet["store_prewarmed"] == len(reqs)
        assert fleet["hits"] == len(reqs)
        assert fleet["misses"] == 0


class TestStoreCli:
    def _populate(self, root, count=3):
        reqs = _requests(count, seed=90)
        with SolverService(workers=1, store_path=root) as svc:
            for req in reqs:
                svc.solve(req)
        return reqs

    def test_verify_export_import_compact_round_trip(self, tmp_path, capsys):
        from repro.cli import main

        root = str(tmp_path / "s")
        self._populate(root)
        assert main(["store", "verify", root]) == 0
        snap = str(tmp_path / "snap.jsonl")
        assert main(["store", "export", root, "--out", snap]) == 0
        other = str(tmp_path / "other")
        assert main(["store", "import", other, snap]) == 0
        assert main(["store", "compact", other]) == 0
        assert main(["store", "verify", other]) == 0
        out = capsys.readouterr().out
        assert "verified 3 records" in out
        assert "exported 3 results" in out
        assert "imported 3 results" in out

    def test_verify_fails_on_tampered_store(self, tmp_path, capsys):
        from repro.cli import main

        root = str(tmp_path / "s")
        self._populate(root, count=2)
        seg = _segments(root)[-1]
        lines = open(seg).read().splitlines()
        record = json.loads(lines[0])
        record["result"]["value"] = "7/2"
        lines[0] = json.dumps(record, sort_keys=True, separators=(",", ":"))
        open(seg, "w").write("\n".join(lines) + "\n")
        assert main(["store", "verify", root]) == 1

    def test_unusable_dir_exits_2(self, tmp_path, capsys):
        from repro.cli import main

        blocker = tmp_path / "not-a-dir"
        blocker.write_text("file, not a directory")
        assert main(["store", "verify", str(blocker)]) == 2
