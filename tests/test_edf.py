"""Unit tests for the EDF simulator and feasibility oracle."""

from fractions import Fraction

import pytest

from repro.scheduling.edf import edf_accept_max_subset, edf_feasible, edf_schedule
from repro.scheduling.job import make_jobs
from repro.scheduling.laminar import is_laminar
from repro.scheduling.segment import Segment
from repro.scheduling.verify import verify_schedule


class TestBasicSimulation:
    def test_single_job(self):
        jobs = make_jobs([(0, 10, 4)])
        res = edf_schedule(jobs)
        assert res.feasible
        assert res.schedule[0] == (Segment(0, 4),)

    def test_two_sequential(self):
        jobs = make_jobs([(0, 4, 2), (4, 8, 2)])
        res = edf_schedule(jobs)
        assert res.feasible
        assert res.schedule[0] == (Segment(0, 2),)
        assert res.schedule[1] == (Segment(4, 6),)

    def test_machine_idles_between_releases(self):
        jobs = make_jobs([(0, 2, 1), (10, 12, 1)])
        res = edf_schedule(jobs)
        assert res.feasible
        assert res.schedule[1] == (Segment(10, 11),)

    def test_empty_jobset(self):
        res = edf_schedule(make_jobs([]))
        assert res.feasible and len(res.schedule) == 0


class TestPreemptionBehaviour:
    def test_later_tighter_job_preempts(self):
        jobs = make_jobs([(0, 20, 10), (2, 5, 3)])
        res = edf_schedule(jobs)
        assert res.feasible
        # Job 0 runs [0,2], job 1 preempts for [2,5], job 0 resumes [5,13].
        assert res.schedule[1] == (Segment(2, 5),)
        assert res.schedule[0] == (Segment(0, 2), Segment(5, 13))

    def test_equal_deadline_tiebreak_by_id(self):
        jobs = make_jobs([(0, 10, 3), (0, 10, 3)])
        res = edf_schedule(jobs)
        assert res.feasible
        assert res.schedule[0] == (Segment(0, 3),)
        assert res.schedule[1] == (Segment(3, 6),)

    def test_no_idle_while_pending(self):
        jobs = make_jobs([(0, 30, 5), (1, 8, 4), (2, 25, 5)])
        res = edf_schedule(jobs)
        assert res.feasible
        busy = res.schedule.busy_segments()
        assert busy[0] == Segment(0, 14)  # one contiguous busy block


class TestFeasibility:
    def test_feasible_set(self, simple_jobs):
        assert edf_feasible(simple_jobs)

    def test_infeasible_overload(self):
        jobs = make_jobs([(0, 4, 4), (0, 4, 4)])
        assert not edf_feasible(jobs)

    def test_miss_reported(self):
        jobs = make_jobs([(0, 4, 4), (0, 4, 4)])
        res = edf_schedule(jobs, stop_on_miss=False)
        assert not res.feasible
        assert len(res.missed) == 1

    def test_stop_on_miss_aborts_early(self):
        jobs = make_jobs([(0, 4, 4), (0, 4, 4), (100, 104, 1)])
        res = edf_schedule(jobs, stop_on_miss=True)
        assert not res.feasible

    def test_exact_tight_instance(self):
        # Zero-slack: two jobs exactly fill [0, 2] with Fraction coordinates.
        jobs = make_jobs(
            [
                (Fraction(0), Fraction(2), Fraction(1)),
                (Fraction(0), Fraction(2), Fraction(1)),
            ]
        )
        assert edf_feasible(jobs)

    def test_exact_tight_infeasible_by_epsilon(self):
        jobs = make_jobs(
            [
                (Fraction(0), Fraction(2), Fraction(1)),
                (Fraction(0), Fraction(2), Fraction(1) + Fraction(1, 10**9)),
            ]
        )
        assert not edf_feasible(jobs)


class TestScheduleQuality:
    def test_output_verifies(self, simple_jobs):
        res = edf_schedule(simple_jobs)
        verify_schedule(res.schedule).assert_ok()

    def test_output_is_laminar(self, simple_jobs):
        res = edf_schedule(simple_jobs)
        assert is_laminar(res.schedule)

    def test_all_value_captured_when_feasible(self, simple_jobs):
        res = edf_schedule(simple_jobs)
        assert res.schedule.value == pytest.approx(simple_jobs.total_value)


class TestGreedyAdmission:
    def test_feasible_set_fully_accepted(self, simple_jobs):
        s = edf_accept_max_subset(simple_jobs)
        assert s.value == pytest.approx(simple_jobs.total_value)

    def test_overload_drops_lowest_priority(self, overloaded_jobs):
        s = edf_accept_max_subset(overloaded_jobs, order="density")
        verify_schedule(s).assert_ok()
        # Jobs 0 (density 2.5) and 2 (1.25) fit; job 1 conflicts with 0.
        assert s.scheduled_ids == [0, 2]

    def test_value_order(self, overloaded_jobs):
        s = edf_accept_max_subset(overloaded_jobs, order="value")
        assert 0 in s  # highest value kept first

    def test_laxity_order(self, overloaded_jobs):
        s = edf_accept_max_subset(overloaded_jobs, order="laxity")
        verify_schedule(s).assert_ok()

    def test_unknown_order(self, simple_jobs):
        with pytest.raises(ValueError):
            edf_accept_max_subset(simple_jobs, order="bogus")

    def test_result_rehomed_to_full_instance(self, overloaded_jobs):
        s = edf_accept_max_subset(overloaded_jobs)
        assert s.jobs is overloaded_jobs
