"""Integration tests: full cross-module pipelines on all instance families.

These exercise the exact composition a user of the library runs: generator
→ OPT_∞ solver → Algorithm 3 → verifier → price measurement, and sandwich
the results against the exact tiny-instance oracles.
"""

from fractions import Fraction

import pytest

from repro import (
    edf_feasible,
    edf_schedule,
    make_jobs,
    measured_price,
    nonpreemptive_combined,
    opt_infty_exact,
    opt_k_exact_small,
    reduce_schedule_to_k_preemptive,
    schedule_k_bounded,
    verify_schedule,
)
from repro.core.combined import k_preemption_combined
from repro.instances.lower_bounds import appendix_b_jobs, geometric_chain
from repro.instances.random_jobs import laminar_job_chain
from repro.instances.workloads import (
    batch_analytics_workload,
    mixed_server_workload,
    realtime_control_workload,
)


class TestSandwichAgainstExactOracles:
    """ALG_k <= OPT_k <= OPT_∞ on tiny integral instances."""

    @pytest.mark.parametrize("seed_jobs", [
        [(0, 8, 4, 3.0), (1, 4, 2, 2.0), (5, 8, 2, 2.0)],
        [(0, 6, 3, 2.0), (1, 4, 2, 3.0), (3, 8, 3, 1.0), (2, 9, 2, 2.0)],
        [(0, 10, 5, 1.0), (2, 6, 2, 1.0), (4, 12, 3, 1.0)],
    ])
    @pytest.mark.parametrize("k", [1, 2])
    def test_sandwich(self, seed_jobs, k):
        jobs = make_jobs(seed_jobs)
        alg = schedule_k_bounded(jobs, k)
        verify_schedule(alg, k=k).assert_ok()
        opt_k = opt_k_exact_small(jobs, k=k)
        opt_inf = opt_infty_exact(jobs)
        assert alg.value <= opt_k.value + 1e-9
        assert opt_k.value <= opt_inf.value + 1e-9

    @pytest.mark.parametrize("seed_jobs", [
        [(0, 6, 4, 2.0), (2, 5, 3, 3.0)],
        [(0, 8, 4, 3.0), (1, 4, 2, 2.0), (5, 8, 2, 2.0)],
    ])
    def test_k0_sandwich(self, seed_jobs):
        jobs = make_jobs(seed_jobs)
        alg = nonpreemptive_combined(jobs)
        verify_schedule(alg, k=0).assert_ok()
        opt_0 = opt_k_exact_small(jobs, k=0)
        assert alg.value <= opt_0.value + 1e-9


class TestWorkloadPipelines:
    @pytest.mark.parametrize("generator,kwargs", [
        (realtime_control_workload, {"n": 25}),
        (batch_analytics_workload, {"n": 30}),
        (mixed_server_workload, {"n": 30}),
    ])
    @pytest.mark.parametrize("k", [1, 2])
    def test_end_to_end(self, generator, kwargs, k):
        jobs = generator(seed=17, **kwargs)
        alg = schedule_k_bounded(jobs, k, exact_opt=False)
        verify_schedule(alg, k=k).assert_ok()
        assert alg.value > 0
        # Price against the greedy OPT estimate stays within the combined
        # bound (max of the n- and P-arm with the algorithm's constants).
        from repro.scheduling.edf import edf_accept_max_subset

        opt = edf_accept_max_subset(jobs)
        m = measured_price(
            opt.value, alg.value,
            bound=max(
                2 * 6 * max(1.0, __import__("math").log(jobs.length_ratio)
                            / __import__("math").log(k + 1)),
                max(1.0, __import__("math").log(jobs.n) / __import__("math").log(k + 1)),
            ),
        )
        assert m.within_bound, f"price {m.price} vs bound {m.bound}"


class TestLowerBoundFamiliesEndToEnd:
    def test_appendix_b_full_pipeline(self):
        inst = appendix_b_jobs(k=2, L=2)
        jobs = inst.jobs
        # OPT_inf from first principles (EDF).
        res = edf_schedule(jobs)
        assert res.feasible
        # Algorithm 3 on the EDF schedule.
        combined = k_preemption_combined(jobs, res.schedule, 2)
        verify_schedule(combined.schedule, k=2).assert_ok()
        # Everything here is strict (λ = 1 + 1/(3K-1) < 3): lax branch empty.
        assert combined.lax_jobs.n == 0
        # Value within [cap / something, cap]: at least the reduction bound.
        scale = inst.K ** inst.L
        assert Fraction(combined.schedule.value, scale) <= inst.opt_k_cap

    def test_chain_accepts_everything_with_one_preemption(self):
        jobs = geometric_chain(6)
        sched = edf_schedule(jobs).schedule
        reduced = reduce_schedule_to_k_preemptive(sched, 1)
        verify_schedule(reduced, k=1).assert_ok()
        # The chain's schedule forest is a path: k=1 keeps every job.
        assert reduced.value == jobs.total_value

    def test_chain_price_collapses_with_k(self):
        jobs = geometric_chain(6)
        v0 = nonpreemptive_combined(jobs).value
        v1 = schedule_k_bounded(jobs, 1).value
        assert v0 == 1.0
        assert v1 == 6.0


class TestNestedChainAllKs:
    def test_value_monotone_in_k(self):
        jobs = laminar_job_chain(3, 3)
        sched = edf_schedule(jobs).schedule
        values = [
            reduce_schedule_to_k_preemptive(sched, k).value for k in (1, 2, 3, 4)
        ]
        assert values == sorted(values)
        # k = branching keeps everything (forest degree 3).
        assert values[2] == pytest.approx(sched.value)

    def test_segment_budget_tracks_k(self):
        jobs = laminar_job_chain(2, 4)
        sched = edf_schedule(jobs).schedule
        for k in (1, 2, 3):
            out = reduce_schedule_to_k_preemptive(sched, k)
            assert out.max_preemptions <= k
