"""Unit tests for Job / JobSet (the Section 2.1 model)."""

from fractions import Fraction

import pytest

from repro.scheduling.job import Job, JobSet, make_jobs


class TestJobValidation:
    def test_valid_job(self):
        j = Job(0, 0, 10, 4, 2.0)
        assert j.window == 10
        assert j.laxity == pytest.approx(2.5)
        assert j.density == pytest.approx(0.5)

    def test_rejects_nonpositive_length(self):
        with pytest.raises(ValueError, match="length"):
            Job(0, 0, 10, 0)

    def test_rejects_nonpositive_value(self):
        with pytest.raises(ValueError, match="value"):
            Job(0, 0, 10, 4, 0.0)

    def test_rejects_window_shorter_than_length(self):
        with pytest.raises(ValueError, match="window"):
            Job(0, 0, 3, 4)

    def test_window_exactly_length_is_allowed(self):
        j = Job(0, 0, 4, 4)
        assert j.laxity == 1

    def test_fraction_coordinates(self):
        j = Job(0, Fraction(0), Fraction(3, 2), Fraction(1, 2))
        assert j.laxity == Fraction(3)

    def test_is_strict_boundary(self):
        # λ = k+1 exactly is strict (Algorithm 3's J1 uses λ <= k+1).
        j = Job(0, 0, 4, 2)  # λ = 2
        assert j.is_strict(1)
        assert not Job(0, 0, 5, 2).is_strict(1)  # λ = 2.5

    def test_shifted(self):
        j = Job(0, 1, 5, 2, 3.0).shifted(10)
        assert (j.release, j.deadline) == (11, 15)
        assert j.length == 2 and j.value == 3.0

    def test_with_id(self):
        j = Job(0, 1, 5, 2).with_id(9)
        assert j.id == 9 and j.release == 1


class TestJobSetBasics:
    def test_len_iter_contains(self, simple_jobs):
        assert len(simple_jobs) == 5
        assert 0 in simple_jobs and 99 not in simple_jobs
        assert [j.id for j in simple_jobs] == [0, 1, 2, 3, 4]

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            JobSet([Job(0, 0, 5, 1), Job(0, 0, 5, 1)])

    def test_getitem(self, simple_jobs):
        assert simple_jobs[2].length == 3

    def test_total_value(self, simple_jobs):
        assert simple_jobs.total_value == pytest.approx(25.0)

    def test_horizon(self, simple_jobs):
        assert simple_jobs.horizon == (0, 28)


class TestJobSetStatistics:
    def test_length_ratio(self, simple_jobs):
        assert simple_jobs.length_ratio == pytest.approx(3.0)

    def test_value_ratio(self, simple_jobs):
        assert simple_jobs.value_ratio == pytest.approx(7.0 / 3.0)

    def test_density_ratio(self, simple_jobs):
        densities = [j.density for j in simple_jobs]
        assert simple_jobs.density_ratio == pytest.approx(max(densities) / min(densities))

    def test_lambda_max(self, simple_jobs):
        # max over λ = {12/5, 6/4, 6/3, 18/6, 20/9} = 3.0 (the (2,20,6) job)
        assert simple_jobs.lambda_max == pytest.approx(3.0)


class TestJobSetDerivedSets:
    def test_subset(self, simple_jobs):
        sub = simple_jobs.subset([1, 3])
        assert sub.ids == [1, 3]

    def test_subset_unknown_id(self, simple_jobs):
        with pytest.raises(KeyError):
            simple_jobs.subset([42])

    def test_without(self, simple_jobs):
        rest = simple_jobs.without([0, 4])
        assert rest.ids == [1, 2, 3]

    def test_split_by_laxity_partitions(self, simple_jobs):
        strict, lax = simple_jobs.split_by_laxity(1)
        assert sorted(strict.ids + lax.ids) == simple_jobs.ids
        assert all(j.laxity <= 2 + 1e-9 for j in strict)
        assert all(j.laxity > 2 for j in lax)

    def test_sorted_by_density_descending(self, simple_jobs):
        ds = [j.density for j in simple_jobs.sorted_by_density()]
        assert ds == sorted(ds, reverse=True)

    def test_sorted_by_density_ties_by_id(self):
        jobs = make_jobs([(0, 10, 2, 4.0), (0, 10, 1, 2.0)])  # equal density 2
        assert [j.id for j in jobs.sorted_by_density()] == [0, 1]

    def test_sorted_by_value_descending(self, simple_jobs):
        vs = [j.value for j in simple_jobs.sorted_by_value()]
        assert vs == sorted(vs, reverse=True)


class TestLengthClasses:
    def test_partition_is_complete(self, simple_jobs):
        classes = simple_jobs.length_classes(2)
        ids = sorted(i for js in classes.values() for i in js.ids)
        assert ids == simple_jobs.ids

    def test_intra_class_ratio_bounded(self):
        jobs = make_jobs([(0, 100, p) for p in (1, 1.5, 2, 3, 4, 7, 8, 15, 16)])
        for c, js in jobs.length_classes(2).items():
            assert js.length_ratio <= 2 + 1e-9

    def test_exact_powers_land_low(self):
        jobs = make_jobs([(0, 100, 1), (0, 100, 2), (0, 100, 4)])
        classes = jobs.length_classes(2)
        # p=2 is exactly the class-0 boundary and stays in class 0.
        assert jobs[1].id in [i for i in classes[0].ids]

    def test_base_k_plus_one(self):
        jobs = make_jobs([(0, 1000, p) for p in (1, 2, 3, 4, 9, 27)])
        classes = jobs.length_classes(3)
        for js in classes.values():
            assert js.length_ratio <= 3 + 1e-9

    def test_rejects_base_one(self, simple_jobs):
        with pytest.raises(ValueError):
            simple_jobs.length_classes(1)

    def test_empty_jobset(self):
        assert JobSet([]).length_classes(2) == {}


class TestMakeJobs:
    def test_three_tuples_default_value(self):
        jobs = make_jobs([(0, 5, 2), (1, 6, 2)])
        assert all(j.value == 1.0 for j in jobs)

    def test_four_tuples(self):
        jobs = make_jobs([(0, 5, 2, 9.0)])
        assert jobs[0].value == 9.0

    def test_start_id(self):
        jobs = make_jobs([(0, 5, 2)], start_id=10)
        assert jobs.ids == [10]

    def test_bad_tuple_length(self):
        with pytest.raises(ValueError):
            make_jobs([(0, 5)])
