"""Property-based tests for Forest invariants."""

from hypothesis import given
from hypothesis import strategies as st

from tests.strategies import forests


@given(forests())
def test_children_consistent_with_parents(f):
    for v in range(f.n):
        for c in f.children(v):
            assert f.parent(c) == v
        p = f.parent(v)
        if p != -1:
            assert v in f.children(p)


@given(forests())
def test_roots_have_no_parent(f):
    assert all(f.parent(r) == -1 for r in f.roots)
    assert sum(1 for v in range(f.n) if f.parent(v) == -1) == len(f.roots)


@given(forests())
def test_topological_order_is_permutation_with_parents_first(f):
    order = f.topological_order()
    assert sorted(order) == list(range(f.n))
    pos = {v: i for i, v in enumerate(order)}
    for v in range(f.n):
        p = f.parent(v)
        if p != -1:
            assert pos[p] < pos[v]


@given(forests())
def test_postorder_reverses_dominance(f):
    pos = {v: i for i, v in enumerate(f.postorder())}
    for v in range(f.n):
        p = f.parent(v)
        if p != -1:
            assert pos[v] < pos[p]


@given(forests())
def test_depths_match_ancestor_chains(f):
    depths = f.depths()
    for v in range(f.n):
        assert depths[v] == len(f.ancestors(v))


@given(forests())
def test_subtree_values_sum_to_total_at_roots(f):
    # approx: float addition order differs between the two computations
    import pytest

    assert sum(f.subtree_value(r) for r in f.roots) == pytest.approx(sum(f.values))


@given(forests())
def test_subtree_nodes_closed_under_parent(f):
    for r in f.roots:
        nodes = set(f.subtree_nodes(r))
        for v in nodes:
            if v != r:
                assert f.parent(v) in nodes


@given(forests())
def test_is_ancestor_agrees_with_ancestors_list(f):
    for v in range(min(f.n, 10)):
        ancs = set(f.ancestors(v))
        for u in range(f.n):
            assert f.is_ancestor(u, v) == (u in ancs)


@given(forests())
def test_leaf_count_plus_degrees(f):
    # Sum of degrees equals number of non-root nodes.
    assert sum(f.degree(v) for v in range(f.n)) == f.n - len(f.roots)


@given(forests(), st.data())
def test_relabeled_preserves_values_and_edges(f, data):
    keep = data.draw(
        st.lists(st.integers(min_value=0, max_value=f.n - 1), unique=True, min_size=1)
    )
    sub, mapping = f.relabeled(keep)
    assert sub.n == len(set(keep))
    for old, new in mapping.items():
        assert sub.value(new) == f.value(old)
        p = f.parent(old)
        if p in mapping:
            assert sub.parent(new) == mapping[p]
        else:
            assert sub.parent(new) == -1
