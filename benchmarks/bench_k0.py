"""E7 — Figure 2 / Section 5: the k = 0 price, lower and upper bounds.

Regenerates both halves: the geometric chain's price ``n = log P + 1``
(lower bound) and the classified en-bloc LSA's ``min{n, 3 log P}``
guarantee on random instances (upper bound), with the naive greedy as a
baseline.
"""

import pytest

from benchmarks.conftest import emit
from repro.analysis.experiments import e7_k0_geometric_chain, e7_k0_upper_bound
from repro.core.nonpreemptive import nonpreemptive_combined, nonpreemptive_lsa_cs
from repro.instances.lower_bounds import geometric_chain
from repro.instances.random_jobs import random_jobs


def test_bench_chain_k0(benchmark):
    jobs = geometric_chain(12)
    s = benchmark(nonpreemptive_combined, jobs)
    assert s.value == 1.0  # the chain defeats any non-preemptive scheduler


def test_bench_classified_lsa_k0(benchmark):
    jobs = random_jobs(150, length_range=(1.0, 128.0), laxity_range=(2.0, 6.0), seed=7)
    s = benchmark(nonpreemptive_lsa_cs, jobs)
    assert s.max_preemptions == 0


def test_bench_e7a_table(benchmark):
    table = benchmark.pedantic(e7_k0_geometric_chain, rounds=1, iterations=1)
    emit(table, "e7a_k0_geometric_chain")
    # Shape: price == n == log2(P) + 1 on every row — both arms tight.
    for n, logP, price in zip(
        table.column("n"), table.column("log2 P"), table.column("price")
    ):
        assert price == n
        assert logP + 1 == pytest.approx(n)


def test_bench_e7b_table(benchmark):
    table = benchmark.pedantic(
        e7_k0_upper_bound,
        kwargs=dict(n=30, P_values=(4.0, 16.0, 64.0), repeats=2),
        rounds=1,
        iterations=1,
    )
    emit(table, "e7b_k0_upper_bound")
    assert all(table.column("within"))
    # The classified algorithm loses to the unclassified greedy on benign
    # random inputs (classification is a worst-case defence) — that's the
    # honest shape — but it must stay within its bound everywhere.
    assert min(table.column("LSA_CS(k=0)")) > 0
