"""Shared helpers for the benchmark suite.

Each benchmark file regenerates one paper artefact (table/figure/theorem
series — see DESIGN.md §3), times its computational kernel with
pytest-benchmark, asserts the paper's shape claims, and writes the
rendered table to ``benchmarks/results/<name>.md`` for EXPERIMENTS.md.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def emit(table, name: str) -> None:
    """Print a table and persist its markdown rendering."""
    print()
    print(table.render())
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.md").write_text(table.render_markdown() + "\n")


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR
