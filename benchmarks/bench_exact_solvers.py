"""Exact OPT_∞ solver scaling: Lawler-style DP vs branch-and-bound vs greedy.

Not a paper table — an infrastructure benchmark for the solvers every
price experiment depends on.  Shape claims: the three agree on value where
all are exact, and the DP scales past the B&B on loosely-constrained
instances (its Pareto front stays flat while subset space doubles).
"""

import pytest

from benchmarks.conftest import emit
from repro.analysis.tables import Table
from repro.instances.random_jobs import random_jobs
from repro.scheduling.edf import edf_accept_max_subset
from repro.scheduling.exact import opt_infty_exact, opt_infty_value
from repro.scheduling.lawler_dp import lawler_optimal_value


def _instance(n, seed=99):
    return random_jobs(
        n, horizon=6.0 * n ** 0.5, length_range=(1.0, 5.0),
        laxity_range=(1.0, 3.0), value_model="independent", seed=seed,
    )


@pytest.mark.parametrize("n", [8, 12, 16])
def test_bench_branch_and_bound(benchmark, n):
    jobs = _instance(n)
    value = benchmark(opt_infty_value, jobs)
    assert value > 0


@pytest.mark.parametrize("n", [8, 12, 16, 24])
def test_bench_lawler_dp(benchmark, n):
    jobs = _instance(n)
    value = benchmark(lawler_optimal_value, jobs)
    assert value > 0


@pytest.mark.parametrize("n", [16, 48])
def test_bench_greedy_admission(benchmark, n):
    jobs = _instance(n)
    sched = benchmark(edf_accept_max_subset, jobs)
    assert sched.value > 0


def test_bench_solver_agreement(benchmark):
    """All three solvers, one table; exact pair must agree, greedy below."""

    def run():
        table = Table(
            title="Exact-solver agreement and the greedy gap",
            columns=["n", "B&B", "Lawler DP", "greedy EDF", "greedy/exact"],
        )
        for n in (6, 10, 14):
            jobs = _instance(n, seed=7 + n)
            bnb = opt_infty_value(jobs)
            dp = lawler_optimal_value(jobs)
            greedy = edf_accept_max_subset(jobs).value
            assert abs(bnb - dp) <= 1e-9 * max(1.0, bnb), (bnb, dp)
            assert greedy <= bnb + 1e-9
            table.add_row(n, bnb, dp, greedy, greedy / bnb)
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(table, "exact_solvers")
    ratios = table.column("greedy/exact")
    assert all(0 < r <= 1 + 1e-9 for r in ratios)
