"""E3 — Figure 1 / Section 4.1 / Theorem 4.2: the reduction round-trip.

Times the pipeline stages (laminar check, forest construction, TM,
compaction) on nested instances with known schedule forests, and asserts
the kept-value guarantee and the k+1 segment budget.
"""

import pytest

from benchmarks.conftest import emit
from repro.analysis.experiments import e3_reduction_roundtrip
from repro.core.reduction import reduce_schedule_to_k_preemptive, schedule_to_forest
from repro.instances.random_jobs import laminar_job_chain
from repro.scheduling.edf import edf_schedule
from repro.scheduling.laminar import laminarize


@pytest.fixture(scope="module")
def deep_schedule():
    jobs = laminar_job_chain(4, 3)  # 121 jobs
    return edf_schedule(jobs).schedule


def test_bench_schedule_to_forest(benchmark, deep_schedule):
    forest, node_to_job = benchmark(schedule_to_forest, deep_schedule)
    assert forest.n == len(deep_schedule)
    assert forest.max_degree == 3


def test_bench_full_reduction(benchmark, deep_schedule):
    out = benchmark(reduce_schedule_to_k_preemptive, deep_schedule, 2)
    assert out.max_preemptions <= 2
    assert out.value > 0


def test_bench_laminarize(benchmark, deep_schedule):
    out = benchmark(laminarize, deep_schedule)
    assert out.value == deep_schedule.value


def test_bench_e3_table(benchmark):
    table = benchmark.pedantic(e3_reduction_roundtrip, rounds=1, iterations=1)
    emit(table, "e3_reduction_roundtrip")
    ratios = table.column("kept value ratio")
    bounds = table.column("bound 1/log_{k+1} n")
    segs = table.column("max segs")
    budgets = table.column("budget k+1")
    # Shape: the reduction always clears the Thm 4.2 floor and never blows
    # the preemption budget.
    assert all(r >= b - 1e-9 for r, b in zip(ratios, bounds))
    assert all(s <= b for s, b in zip(segs, budgets))
