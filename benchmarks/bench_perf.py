"""Performance-layer benchmarks: the vectorized TM kernel, the parallel
sweep engine and the feasibility cache, with the speedup acceptance gates.

The machine-readable trajectory (``BENCH_perf.json``) is produced by
``python -m repro bench``; this file re-times the same kernels under
pytest-benchmark and asserts the headline claims:

* ``tm_values_vectorized`` ≥ 5× the reference loop at n = 10^5;
* the persistent pool's ``run_sweep[workers=4]`` ≥ 3× serial (≥ 1.5× under
  ``CI``, where shared runners throttle; skipped below 4 usable cores —
  the speedup is physically bounded by the core count);
* the cross-instance ``tm_values_batched`` ≥ 2× per-forest vectorized
  calls on a 64-forest batch (≥ 1.6× under ``CI``);
* parallel and serial sweeps agree bit-for-bit (the equality, not the
  timing, is the correctness contract);
* the disabled observability layer costs < 5% on the TM hot path
  (``repro.obs`` tracer contract);
* a solver-service cache hit answers ≥ 10× faster than the cold solve it
  memoised (``repro.serve`` acceptance gate);
* a restarted service prewarmed from the durable store answers within 2×
  of warm-cache p50 (``repro.store`` acceptance gate: a restart must be
  indistinguishable from a warm process);
* the bitset ``OPT_∞`` core solves an overloaded integral n = 20 instance
  cold (caches cleared) in under 1 s — the frontier the legacy
  branch-and-bound could not reach at all.
"""

import json
import os

import pytest

from repro.analysis.perf import (
    bench_opt_exact,
    bench_serve_cache,
    bench_store_prewarm,
    bench_sweep_engine,
    bench_tm_batched,
    bench_tm_kernels,
    bench_tracer_overhead,
    run_bench,
)
from repro.analysis.sweep import Sweep, run_sweep
from repro.core.bas.tm import tm_values, tm_values_vectorized
from repro.instances.random_trees import random_forest


@pytest.mark.parametrize("n", [10_000, 100_000])
def test_bench_tm_vectorized(benchmark, n):
    forest = random_forest(n, seed=2018)
    forest.children_index  # warm the CSR layout; the DP is what's timed
    t, m = benchmark(tm_values_vectorized, forest, 2)
    assert len(t) == n and len(m) == n


def test_vectorized_speedup_at_1e5():
    records = bench_tm_kernels(sizes=(100_000,), k_values=(2,), reps=3)
    fast = [r for r in records if r.op == "tm_values_vectorized"]
    assert fast and fast[0].speedup_vs_reference >= 5.0, (
        f"vectorized TM below the 5x gate: {fast}"
    )


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def test_sweep_pool_speedup_gate():
    """``run_sweep[workers=4]`` ≥ 3× serial (1.5× on CI's shared runners).

    The pool's speedup is bounded above by the usable core count, so the
    gate only means something with ≥ 4 cores; below that the JSON
    trajectory still records the honest number but nothing is asserted.
    """
    cores = _usable_cores()
    if cores < 4:
        pytest.skip(f"pool speedup gate needs >= 4 usable cores, have {cores}")
    threshold = 1.5 if os.environ.get("CI") else 3.0
    records = bench_sweep_engine(workers_values=(1, 4), reps=3)
    parallel = [r for r in records if r.op == "run_sweep[workers=4]"]
    assert parallel, f"workers=4 record missing: {records}"
    assert parallel[0].speedup_vs_reference >= threshold, (
        f"pool sweep below the {threshold}x gate: {parallel[0]}"
    )


def test_tm_batched_speedup_gate():
    """One stacked kernel pass ≥ 2× the 64 per-forest calls it replaces.

    Best of two trials: the ratio is min-of-reps on both sides already,
    but a background scheduling spike during the short batched timings can
    still deflate a whole trial on a busy host.
    """
    threshold = 1.6 if os.environ.get("CI") else 2.0
    best = 0.0
    for _ in range(2):
        records = bench_tm_batched(reps=5)
        batched = [r for r in records if r.op == "tm_values_batched"]
        assert batched, f"batched record missing: {records}"
        best = max(best, batched[0].speedup_vs_reference)
        if best >= threshold:
            break
    assert best >= threshold, (
        f"batched TM kernel below the {threshold}x gate: best {best:.2f}x"
    )


def test_tracer_disabled_overhead_under_5pct():
    records = bench_tracer_overhead(n=100_000, k=4, reps=7)
    disabled = [r for r in records if r.op == "tracer_overhead[disabled]"]
    assert disabled, f"overhead record missing: {records}"
    # speedup_vs_reference = min(raw impl) / min(wrapper, tracer off);
    # 1/1.05 is the 5% contract with min-of-reps noise robustness.
    assert disabled[0].speedup_vs_reference >= 1 / 1.05, (
        f"disabled tracer exceeds the 5% overhead gate: {disabled[0]}"
    )


def test_opt_exact_cold_n20_gate():
    """Bitset ``OPT_∞`` cold solve at n = 20 stays under 1 s.

    Cold means genuinely cold: ``bench_opt_exact`` clears the solve and
    feasibility memo caches before every rep, so the gate times the full
    bitset branch-and-bound, not a dictionary lookup.  One second is ~50×
    the typical median on an unloaded host — the gate exists to catch a
    pruning or bound regression that reopens the exponential blowup, not
    to race the runner."""
    records = bench_opt_exact(sizes=(20,), reps=3)
    cold = [r for r in records if r.op == "opt_infty_exact[bitset cold]"]
    assert cold, f"cold record missing: {records}"
    assert cold[0].median_ms < 1000.0, (
        f"n=20 cold exact solve above the 1s gate: {cold[0]}"
    )


def test_serve_cache_speedup_at_least_10x():
    records = bench_serve_cache(reps=3)
    cached = [r for r in records if r.op == "serve.solve[cached]"]
    assert cached, f"serve cache record missing: {records}"
    assert cached[0].speedup_vs_reference >= 10.0, (
        f"serve cache hit below the 10x gate: {cached[0]}"
    )


def test_store_prewarm_within_2x_of_warm():
    """Prewarmed cold-start p50 ≤ 2× warm-cache p50 (the ROADMAP store gate).

    Both phases are memory-LRU hits at the tens-of-µs scale — prewarming
    moved the disk cost to service construction, which is exactly the
    contract.  The small absolute floor keeps the ratio meaningful at that
    scale instead of amplifying scheduler noise; ``repro bench
    --max-prewarm-ratio`` enforces the same bound from the CLI.
    """
    records = bench_store_prewarm(reps=3)
    by_op = {r.op: r for r in records}
    warm = by_op.get("serve.store[warm-cache]")
    prewarmed = by_op.get("serve.store[prewarmed-cold-start]")
    assert warm and prewarmed, f"store prewarm records missing: {records}"
    assert prewarmed.median_ms <= 2.0 * warm.median_ms + 0.25, (
        f"prewarmed cold-start p50 {prewarmed.median_ms:.3f} ms above 2x "
        f"warm-cache p50 {warm.median_ms:.3f} ms"
    )


def test_bench_sweep_parallel_identical(benchmark):
    from repro.analysis.config import CELL_REGISTRY

    cell = CELL_REGISTRY["bas_loss_random"]
    sweep = Sweep(axes={"n": [200], "k": [1, 2], "shape": ["attachment"]}, repeats=2)
    serial = run_sweep(sweep, cell, seed=7, workers=1)
    parallel = benchmark.pedantic(
        run_sweep, args=(sweep, cell), kwargs=dict(seed=7, workers=2),
        rounds=1, iterations=1,
    )
    assert serial == parallel


def test_bench_perf_json(tmp_path):
    out = tmp_path / "BENCH_perf.json"
    payload = run_bench(quick=True, out=str(out))
    on_disk = json.loads(out.read_text())
    assert on_disk["schema"] == "repro-bench-perf/2"
    assert on_disk["runs"][-1] == payload
    assert payload["schema"] == "repro-bench-perf/1"
    ops = {r["op"] for r in payload["records"]}
    assert "tm_values_vectorized" in ops and any(o.startswith("run_sweep") for o in ops)
    for rec in payload["records"]:
        assert rec["median_ms"] >= 0 and rec["p90_ms"] >= rec["median_ms"] * 0.999
