"""E16 — the headline trade curve: realised price vs preemption budget k.

Regenerates the k-sweep on the benign mix and the Figure 2 chain, whose
shapes are the paper's two stories in one table: the chain's k = 0 → 1
cliff (price n → 1) and the smooth, quickly-flattening decay predicted by
``log_{k+1}`` bounds on benign inputs.
"""

import pytest

from benchmarks.conftest import emit
from repro.analysis.experiments import e16_price_vs_k


def test_bench_e17_table(benchmark):
    from repro.analysis.experiments import e17_switch_cost

    table = benchmark.pedantic(
        e17_switch_cost, kwargs=dict(costs=(0.0, 2.0, 32.0), n=25), rounds=1, iterations=1
    )
    emit(table, "e17_switch_cost")
    # Shape: optimal k non-increasing in cost, per instance.
    by_inst = {}
    for inst, cost, k, _net, _sw in table.rows:
        by_inst.setdefault(inst, []).append(k)
    for ks in by_inst.values():
        assert ks == sorted(ks, reverse=True)


def test_bench_e16_table(benchmark):
    table = benchmark.pedantic(
        e16_price_vs_k, kwargs=dict(k_values=(0, 1, 2, 4, 8), n=30), rounds=1, iterations=1
    )
    emit(table, "e16_price_vs_k")
    rows = [(r[0], r[1], r[3]) for r in table.rows]
    chain = {k: p for inst, k, p in rows if inst == "geometric chain"}
    mix = {k: p for inst, k, p in rows if inst == "mixed server"}
    # The chain's cliff: price n at k=0, exactly 1 from k=1 on.
    assert chain[0] == pytest.approx(8.0)
    assert all(chain[k] == pytest.approx(1.0) for k in chain if k >= 1)
    # The mix flattens: the k=8 price is within a factor ~2 of the k=2 one
    # and no worse (diminishing returns past small k).
    assert mix[8] <= mix[2] + 1e-9
    assert mix[8] >= 1.0 - 1e-9
