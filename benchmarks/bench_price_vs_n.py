"""E4 — Theorem 4.2: realised price versus the number of jobs.

Times the exact ``OPT_∞`` branch-and-bound and Algorithm 3 on random
instances, and regenerates the price-vs-n series with its bound check.
"""

import pytest

from benchmarks.conftest import emit
from repro.analysis.experiments import e4_price_vs_n
from repro.core.combined import schedule_k_bounded
from repro.instances.random_jobs import random_jobs
from repro.scheduling.exact import opt_infty_exact


@pytest.fixture(scope="module")
def instance():
    return random_jobs(
        14, horizon=30.0, length_range=(1.0, 6.0), laxity_range=(1.0, 4.0), seed=4
    )


def test_bench_exact_opt_infty(benchmark, instance):
    opt = benchmark(opt_infty_exact, instance)
    assert opt.value > 0


def test_bench_combined_algorithm(benchmark, instance):
    s = benchmark(schedule_k_bounded, instance, 2)
    assert s.max_preemptions <= 2


def test_bench_e4_table(benchmark):
    table = benchmark.pedantic(
        e4_price_vs_n,
        kwargs=dict(n_values=(6, 9, 12), k_values=(1, 2), repeats=2),
        rounds=1,
        iterations=1,
    )
    emit(table, "e4_price_vs_n")
    # Shape: every measured price respects its theorem ceiling, and the
    # realised prices stay an order of magnitude below log_{k+1} n on
    # non-adversarial inputs.
    assert all(table.column("within"))
    prices = table.column("price")
    assert max(prices) < 5.0
