"""E15 — periodic task systems (the §1.2 motivation domain).

Times hyperperiod unrolling and the three k-bounded schedulers on periodic
workloads, and regenerates the utilisation-sweep table: benign below
U = 1, diverging above, budgets respected everywhere.
"""

import pytest

from benchmarks.conftest import emit
from repro.analysis.experiments import e15_periodic_tasks
from repro.core.budget_edf import budget_edf
from repro.core.combined import schedule_k_bounded
from repro.core.fixed_points import fixed_point_schedule
from repro.instances.periodic import random_task_set, unroll


@pytest.fixture(scope="module")
def periodic_jobs():
    tasks = random_task_set(6, 1.2, seed=53)
    return unroll(tasks)


def test_bench_unroll(benchmark):
    tasks = random_task_set(8, 0.9, seed=53)
    jobs = benchmark(unroll, tasks)
    assert jobs.n > 0


def test_bench_pipeline_on_periodic(benchmark, periodic_jobs):
    s = benchmark(schedule_k_bounded, periodic_jobs, 2, exact_opt=False)
    assert s.max_preemptions <= 2


def test_bench_budget_edf_on_periodic(benchmark, periodic_jobs):
    s = benchmark(budget_edf, periodic_jobs, 2)
    assert s.max_preemptions <= 2


def test_bench_fixed_points_on_periodic(benchmark, periodic_jobs):
    s = benchmark(fixed_point_schedule, periodic_jobs, 2)
    assert s.max_preemptions <= 2


def test_bench_e15_table(benchmark):
    table = benchmark.pedantic(
        e15_periodic_tasks,
        kwargs=dict(utilizations=(0.5, 0.9, 1.3), n_tasks=5, repeats=2),
        rounds=1,
        iterations=1,
    )
    emit(table, "e15_periodic_tasks")
    # Shape: below U = 1 every scheduler keeps ≥ 90% of OPT; the budget is
    # respected everywhere.
    for row in table.rows:
        target_u, feasible, opt = row[0], row[3], row[4]
        pipe, budget, fixed, pre = row[5], row[6], row[7], row[8]
        assert pre <= 2
        if target_u <= 0.9 and feasible:
            for val in (pipe, budget, fixed):
                assert val >= 0.9 * opt
