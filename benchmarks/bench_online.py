"""E14 — online baselines and the preemption bill (§1.4 context).

Times the event-driven online policies and regenerates the table whose
headline shape is the paper's motivating trade: online EDF-style policies
get near-OPT value but preempt without bound, while the offline pipeline
caps preemptions at k for a bounded value factor.
"""

import pytest

from benchmarks.conftest import emit
from repro.analysis.experiments import e14_online_baselines
from repro.instances.workloads import mixed_server_workload
from repro.scheduling.online import online_edf_admission, online_value_abort


@pytest.fixture(scope="module")
def workload():
    return mixed_server_workload(60, seed=41)


def test_bench_online_admission(benchmark, workload):
    s = benchmark(online_edf_admission, workload)
    assert s.value > 0


def test_bench_online_abort(benchmark, workload):
    s = benchmark(online_value_abort, workload)
    assert s.value > 0


def test_bench_e14_table(benchmark):
    table = benchmark.pedantic(
        e14_online_baselines, kwargs=dict(n=30, repeats=2), rounds=1, iterations=1
    )
    emit(table, "e14_online_baselines")
    rows = {r[0]: (r[2], r[3]) for r in table.rows}
    # Shape: the online policies' preemption counts exceed the pipeline's
    # k caps, while their value ratio is higher — both sides of the trade.
    online_pre = max(rows["online admission-EDF"][1], rows["online value-abort EDF"][1])
    for k in (1, 2):
        ratio, pre = rows[f"offline pipeline k={k}"]
        assert pre <= k
        assert online_pre >= pre
    assert rows["online value-abort EDF"][0] >= rows["offline pipeline k=1"][0]
