"""E2 — Theorem 3.9 / Lemmas 3.17–3.18: the k-BAS loss upper bound.

Regenerates the random-forest series: TM and LevelledContraction losses
against ``log_{k+1} n``, contraction iteration counts, and the geometric
layer decay the proof of Lemma 3.18 relies on.
"""

import pytest

from benchmarks.conftest import emit
from repro.analysis.experiments import e2_bas_upper_bound
from repro.core.bas.contraction import levelled_contraction
from repro.core.bas.tm import tm_optimal_bas
from repro.instances.random_trees import random_forest


@pytest.mark.parametrize("n", [1000, 8000])
def test_bench_tm_random_forest(benchmark, n):
    forest = random_forest(n, shape="attachment", seed=2018)
    bas = benchmark(tm_optimal_bas, forest, 2)
    assert 0 < bas.value <= forest.total_value


@pytest.mark.parametrize("n", [1000, 8000])
def test_bench_contraction_random_forest(benchmark, n):
    forest = random_forest(n, shape="preferential", seed=2018)
    trace = benchmark(levelled_contraction, forest, 2)
    assert trace.num_iterations >= 1


def test_bench_e2_table(benchmark):
    table = benchmark.pedantic(
        e2_bas_upper_bound,
        kwargs=dict(n_values=(50, 200, 800), k_values=(1, 2, 4), repeats=2),
        rounds=1,
        iterations=1,
    )
    emit(table, "e2_bas_upper_bound")
    # Shape: every loss sits below its log bound; iterations track the
    # bound; larger k gives strictly smaller losses on average.
    tm_losses = table.column("TM loss")
    bounds = table.column("bound log_{k+1} n")
    iters = table.column("iterations L")
    assert all(l <= b + 1e-9 for l, b in zip(tm_losses, bounds))
    assert all(i <= b + 1 for i, b in zip(iters, bounds))
    ks = table.column("k")
    by_k = {}
    for k, l in zip(ks, tm_losses):
        by_k.setdefault(k, []).append(l)
    means = {k: sum(v) / len(v) for k, v in by_k.items()}
    assert means[4] < means[1]
