"""E5 — Theorem 4.5 / Lemma 4.10: LSA_CS on lax jobs versus the length
ratio P.

Times LSA and LSA_CS and regenerates the price-vs-P series: the measured
price grows (slowly) with P but always clears the ``6·log_{k+1} P`` bar.
"""

import pytest

from benchmarks.conftest import emit
from repro.analysis.experiments import e5_price_vs_P
from repro.core.lsa import lsa, lsa_cs
from repro.instances.random_jobs import random_lax_jobs


@pytest.fixture(scope="module")
def lax_instance():
    return random_lax_jobs(120, 2, length_ratio=64.0, horizon=400.0, seed=5)


def test_bench_lsa_single_class(benchmark):
    jobs = random_lax_jobs(120, 2, length_ratio=2.9, horizon=400.0, seed=6)
    s = benchmark(lsa, jobs, 2)
    assert s.max_preemptions <= 2


def test_bench_lsa_cs(benchmark, lax_instance):
    s = benchmark(lsa_cs, lax_instance, 2)
    assert s.max_preemptions <= 2
    assert s.value > 0


def test_bench_e5_table(benchmark):
    table = benchmark.pedantic(
        e5_price_vs_P,
        kwargs=dict(P_values=(4.0, 16.0, 64.0), k_values=(1, 2), n=40, repeats=2),
        rounds=1,
        iterations=1,
    )
    emit(table, "e5_price_vs_P")
    assert all(table.column("within"))
    # Shape: price grows with P for fixed k (classification spreads value
    # across more classes), and shrinks with k for fixed P.
    prices = table.column("price")
    Ps = table.column("P")
    ks = table.column("k")
    first_k = min(ks)
    series = [p for p, P, k in zip(prices, Ps, ks) if k == first_k]
    assert series[-1] >= series[0] - 0.3
