"""E1 — Figure 3 / Appendix A / Theorem 3.20: the k-BAS loss lower bound.

Regenerates the series behind the paper's tightness proof: TM's value on
the layered K-ary tree (K = 2k) stays below ``K/(K-k) = 2`` while the
tree's value grows linearly in the number of levels, so the realised loss
is ``Ω(log_{k+1} n)``.
"""

import pytest

from benchmarks.conftest import emit
from repro.analysis.experiments import e1_bas_lower_bound
from repro.core.bas.tm import tm_optimal_bas
from repro.instances.lower_bounds import appendix_a_forest


@pytest.mark.parametrize("k,L", [(1, 8), (2, 5), (3, 4)])
def test_bench_tm_on_appendix_a(benchmark, k, L):
    """Time TM on the worst-case instance (the paper's own adversary)."""
    forest = appendix_a_forest(2 * k, L)
    bas = benchmark(tm_optimal_bas, forest, k)
    # Shape: the algorithm's (scaled) value stays below 2 * K^L while the
    # forest's value is (L+1) * K^L — loss grows with L.
    scale = (2 * k) ** L
    assert bas.value < 2 * scale
    assert forest.total_value == (L + 1) * scale


def test_bench_e1_table(benchmark):
    """Regenerate the full E1 series and check its headline shape."""
    table = benchmark.pedantic(e1_bas_lower_bound, rounds=1, iterations=1)
    emit(table, "e1_bas_lower_bound")
    losses = table.column("loss")
    caps = table.column("cap K/(K-k)")
    values = table.column("TM value")
    # Who wins: the adversary — loss exceeds 2 once L >= 3 while TM's value
    # never reaches the K/(K-k) cap.
    assert max(losses) > 2.0
    assert all(v < c for v, c in zip(values, caps))
    # Crossover shape: loss ≈ (L+1)/2 for large L (within 15%).
    last = table.rows[-1]
    L = last[1]
    assert losses[-1] == pytest.approx((L + 1) / 2, rel=0.15)
