"""E11 — extensions: §1.4 classification axes and heuristic baselines.

Times the generic classify-and-select combinator over the three axes
(length/value/density), the budget-EDF heuristic, and the migrative
global-EDF baseline, and regenerates the comparison table whose headline
shape is: heuristics are competitive on benign mixes but collapse on the
Appendix-B adversarial family where only the pipeline carries a bound.
"""

import pytest

from benchmarks.conftest import emit
from repro.analysis.experiments import e11_extensions
from repro.core.budget_edf import budget_edf
from repro.core.classify import classify_and_select
from repro.instances.lower_bounds import appendix_b_jobs
from repro.instances.workloads import mixed_server_workload
from repro.scheduling.global_edf import global_edf_accept_max_subset, verify_migratory


@pytest.fixture(scope="module")
def workload():
    return mixed_server_workload(40, seed=23)


@pytest.mark.parametrize("key", ["length", "value", "density"])
def test_bench_classify_axes(benchmark, workload, key):
    s = benchmark(classify_and_select, workload, 2, key=key)
    assert s.max_preemptions <= 2
    assert s.value > 0


def test_bench_budget_edf(benchmark, workload):
    s = benchmark(budget_edf, workload, 2)
    assert s.max_preemptions <= 2


def test_bench_global_edf_migrative(benchmark, workload):
    s = benchmark(global_edf_accept_max_subset, workload, 2)
    verify_migratory(s).assert_ok()
    assert s.value > 0


def test_bench_e12_table(benchmark):
    from repro.analysis.experiments import e12_strict_windows

    table = benchmark.pedantic(e12_strict_windows, rounds=1, iterations=1)
    emit(table, "e12_strict_windows")
    # Shape: layer counts within the log_{k+1}(P·λmax) bound, kept ratios
    # above the Lemma 4.6 floor, window growth well past k+1.
    for L, bound in zip(table.column("layers L"), table.column("bound log_{k+1}(P·λmax)")):
        assert L <= bound + 1
    for kept, floor in zip(table.column("kept ratio"), table.column("floor 1/log_{k+1} P")):
        assert kept >= floor - 1e-9


def test_bench_e13_table(benchmark):
    from repro.analysis.experiments import e13_charging_argument

    table = benchmark.pedantic(
        e13_charging_argument, kwargs=dict(k_values=(1, 2), n=60, repeats=2),
        rounds=1, iterations=1,
    )
    emit(table, "e13_charging_argument")
    # Shape: every proof-step check passes and rejected loads clear b0.
    assert all(table.column("busy-floor ok"))
    assert all(table.column("cover ok"))
    assert all(table.column("parity disjoint"))
    loads = [x for x in table.column("min rejected load") if x == x]
    floors = [x for x in table.column("b0 floor") if x == x]
    assert all(l >= f - 1e-9 for l, f in zip(loads, floors))


def test_bench_e11_table(benchmark):
    table = benchmark.pedantic(
        e11_extensions, kwargs=dict(k=2, n=30, repeats=2), rounds=1, iterations=1
    )
    emit(table, "e11_extensions")
    rows = {(r[0], r[1]): r[4] for r in table.rows}
    # Shape: on the adversarial family the pipeline's share strictly beats
    # every unbounded-loss competitor.
    adv = "appendix-B (adversarial)"
    pipeline = rows[(adv, "pipeline (Alg 3)")]
    for method in ("classify value (log rho)", "classify density (log sigma)",
                   "budget-EDF (no bound)"):
        assert pipeline >= rows[(adv, method)] - 1e-9
