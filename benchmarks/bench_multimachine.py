"""E8 — Section 4.3.4: multiple non-migrative machines.

Times the iterated-assignment wrapper and regenerates the machines-scaling
series on the replicated lower bound and a mixed workload.
"""

import pytest

from benchmarks.conftest import emit
from repro.analysis.experiments import e8_multimachine
from repro.core.multimachine import multimachine_k_bounded, multimachine_opt_infty
from repro.instances.workloads import mixed_server_workload


@pytest.fixture(scope="module")
def workload():
    return mixed_server_workload(60, seed=8)


def test_bench_multimachine_pipeline(benchmark, workload):
    mm = benchmark(multimachine_k_bounded, workload, 2, 4)
    assert mm.num_machines <= 4
    assert mm.max_preemptions <= 2


def test_bench_multimachine_opt(benchmark, workload):
    mm = benchmark(multimachine_opt_infty, workload, 4)
    assert mm.value > 0


def test_bench_e8_table(benchmark):
    table = benchmark.pedantic(
        e8_multimachine,
        kwargs=dict(machines_values=(1, 2, 4), k=2, n=30),
        rounds=1,
        iterations=1,
    )
    emit(table, "e8_multimachine")
    # Shape: price never exceeds the bound, and the replicated Appendix-B
    # instance keeps the *same* price at every machine count (each machine
    # solves its own copy — the paper's "third axis" argument).
    rows = table.rows
    appb = [r for r in rows if r[0] == "appendix-B x m"]
    prices = [r[4] for r in appb]
    assert max(prices) - min(prices) < 1e-6
    for r in rows:
        assert r[4] <= r[5] + 1e-9
