"""E6 — Figure 4 / Appendix B / Theorems 4.3 & 4.13: the price lower bound.

Times exact (Fraction-arithmetic) EDF on the zero-slack nested instance and
the reduction that achieves Lemma B.2's ``OPT_k`` exactly, and regenerates
the price series growing as ``Ω(log_{k+1} P)`` / ``Ω(log_{k+1} n)``.
"""

from fractions import Fraction

import pytest

from benchmarks.conftest import emit
from repro.analysis.experiments import e6_price_lower_bound
from repro.core.reduction import reduce_schedule_to_k_preemptive
from repro.instances.lower_bounds import appendix_b_jobs
from repro.scheduling.edf import edf_schedule


@pytest.fixture(scope="module")
def instance():
    return appendix_b_jobs(k=2, L=3)  # 85 jobs, exact arithmetic


def test_bench_exact_edf_on_nested_instance(benchmark, instance):
    res = benchmark(edf_schedule, instance.jobs)
    assert res.feasible  # OPT_inf = L + 1, verified executably


def test_bench_reduction_hits_lemma_b2_cap(benchmark, instance):
    nested = instance.nested_optimal_schedule()
    out = benchmark(reduce_schedule_to_k_preemptive, nested, instance.k)
    scale = instance.K ** instance.L
    assert Fraction(out.value, scale) == instance.opt_k_cap


def test_bench_e6_table(benchmark):
    table = benchmark.pedantic(
        e6_price_lower_bound,
        kwargs=dict(k_values=(1, 2), L_values=(1, 2, 3)),
        rounds=1,
        iterations=1,
    )
    emit(table, "e6_price_lower_bound")
    # Shape: for each k the price grows linearly in L (≈ (L+1)/2 at the
    # K = 2k choice) while OPT_k stays below 2 — the paper's tightness.
    ks = table.column("k")
    prices = table.column("price")
    caps = table.column("OPT_k cap")
    for k in set(ks):
        series = [p for p, kk in zip(prices, ks) if kk == k]
        assert series == sorted(series)
    assert all(c < 2 for c in caps)
    # Our algorithm achieves the analytic cap exactly on every row.
    assert all(
        alg == pytest.approx(cap)
        for alg, cap in zip(table.column("ALG_k (ours)"), caps)
    )
