"""E9 — runtime scaling: the paper's O(|V|) remarks for TM and
LevelledContraction, plus LSA's near-linearithmic behaviour.

pytest-benchmark gives the per-size timings; the table records µs/node so
the linearity is visible at a glance.
"""

import pytest

from benchmarks.conftest import emit
from repro.analysis.experiments import e9_runtime_scaling
from repro.core.bas.contraction import levelled_contraction
from repro.core.bas.tm import tm_optimal_value
from repro.core.lsa import lsa
from repro.instances.random_jobs import random_lax_jobs
from repro.instances.random_trees import random_forest


@pytest.mark.parametrize("n", [2000, 16000])
def test_bench_tm_scaling(benchmark, n):
    forest = random_forest(n, seed=9)
    value = benchmark(tm_optimal_value, forest, 2)
    assert value > 0


@pytest.mark.parametrize("n", [2000, 16000])
def test_bench_contraction_scaling(benchmark, n):
    forest = random_forest(n, seed=9)
    trace = benchmark(levelled_contraction, forest, 2)
    assert trace.num_iterations >= 1


@pytest.mark.parametrize("n", [100, 400])
def test_bench_lsa_scaling(benchmark, n):
    jobs = random_lax_jobs(n, 2, length_ratio=2.9, horizon=8.0 * n, seed=10)
    s = benchmark(lsa, jobs, 2)
    assert s.value > 0


def test_bench_e9_table(benchmark):
    table = benchmark.pedantic(
        e9_runtime_scaling,
        kwargs=dict(n_values=(1000, 4000, 16000), k=2),
        rounds=1,
        iterations=1,
    )
    emit(table, "e9_runtime_scaling")
    per_node = table.column("TM us/node")
    # Linearity: per-node cost across a 16x size range stays within ~5x
    # (Python constant factors wobble; asymptotic blow-up would be >> this).
    assert max(per_node) <= 5 * min(per_node) + 5
