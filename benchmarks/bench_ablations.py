"""E10 — design-choice ablations.

Three comparisons the paper's choices imply:

* density-sorted LSA (the paper's §4.3.2 modification) vs the value-sorted
  original of Albagli-Kim et al. [1];
* TM (optimal DP) vs LevelledContraction (the analysable algorithm) —
  quality gap on heavy-value random forests;
* left-merge compaction's segment counts against the k + 1 budget.
"""

import pytest

from benchmarks.conftest import emit
from repro.analysis.experiments import e10_ablations
from repro.core.lsa import lsa_cs
from repro.instances.random_jobs import random_lax_jobs


@pytest.mark.parametrize("order", ["density", "value"])
def test_bench_lsa_ordering(benchmark, order):
    jobs = random_lax_jobs(100, 2, length_ratio=64.0, value_model="independent", seed=11)
    s = benchmark(lsa_cs, jobs, 2, order=order)
    assert s.value > 0


def test_bench_e10_table(benchmark):
    table = benchmark.pedantic(
        e10_ablations, kwargs=dict(n=50, repeats=3), rounds=1, iterations=1
    )
    emit(table, "e10_ablations")
    rows = {(r[0], r[1]): r[3] for r in table.rows}
    # TM, being optimal, can never lose to LevelledContraction.
    assert rows[("k-BAS algorithm", "TM (optimal)")] >= rows[
        ("k-BAS algorithm", "LevelledContraction")
    ]
    # Compaction stays within the budget on the nested family.
    compaction = [v for (a, _), v in rows.items() if a == "compaction"]
    assert all(v <= 3 for v in compaction)


def test_bench_adversarial_ordering_gap(benchmark):
    """A crafted instance where density ordering beats value ordering:
    one long low-density but high-value job blocks many short dense ones."""
    from repro.scheduling.job import Job, JobSet

    jobs = [Job(0, 0, 40, 20, 30.0)]  # big value, density 1.5
    jobs += [Job(i, 0, 40, 2, 10.0) for i in range(1, 11)]  # density 5
    js = JobSet(jobs)

    def run_both():
        d = lsa_cs(js, k=1, order="density").value
        v = lsa_cs(js, k=1, order="value").value
        return d, v

    d, v = benchmark.pedantic(run_both, rounds=1, iterations=1)
    # Same class? lengths 20 vs 2 → different classes; both orderings then
    # coincide per class.  The point of the bench is the measured numbers —
    # assert only the guarantee both must satisfy.
    assert d > 0 and v > 0
